"""Block-parallel execution: batched tensors, fused layers, serving parity.

The contract under test: the block-parallel grouped execution (and every
``forward_batch`` kernel underneath it) produces pixels bit-identical to the
scalar one-block-at-a-time flow, across every layer type, every block-flow
catalogue workload, both functional backends, non-divisible image sizes
(edge-block groups) and the cross-frame batch APIs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.workloads import synthetic_image
from repro.api import Session
from repro.core.blockflow import (
    block_based_inference,
    block_based_inference_many,
    frame_based_inference,
)
from repro.core.pipeline import BlockInferencePipeline
from repro.nn.layers import AddBias, ClippedReLU, Conv2d, Layer, ReLU, Residual
from repro.nn.ops import (
    MaxPool2x2,
    PixelShuffle,
    PixelUnshuffle,
    StridedPool2x2,
    ZeroPad,
)
from repro.nn.tensor import BatchedFeatureMap, FeatureMap
from repro.quant.quantize import quantize_network
from repro.runtime.cache import ResultCache
from repro.runtime.engine import ServingEngine

#: Every block-flow workload of the serving catalogue (recognition has no
#: pixel path) and the two functionally-executing backend families.
PIXEL_WORKLOADS = ("denoise", "super_resolution", "style_transfer")
PIXEL_BACKENDS = ("ecnn", "frame_based")

#: (height, width) pairs per workload: one block-aligned size and one
#: non-divisible size that exercises edge-block remainder groups.
WORKLOAD_SIZES = {
    "denoise": ((40, 40), (35, 27)),
    "super_resolution": ((40, 40), (35, 27)),
    "style_transfer": ((64, 64), (68, 52)),
}


# ------------------------------------------------------------------ container
class TestBatchedFeatureMap:
    def test_requires_four_dims_and_nonempty_batch(self):
        with pytest.raises(ValueError):
            BatchedFeatureMap(data=np.zeros((3, 8, 8)))
        with pytest.raises(ValueError):
            BatchedFeatureMap(data=np.zeros((0, 3, 8, 8)))

    def test_stack_and_unstack_round_trip(self, rng):
        maps = [FeatureMap(data=rng.random((3, 6, 5))) for _ in range(4)]
        batch = BatchedFeatureMap.from_maps(maps)
        assert batch.shape == (4, 3, 6, 5)
        assert batch.batch == len(batch) == 4
        assert (batch.channels, batch.height, batch.width) == (3, 6, 5)
        for original, restored in zip(maps, batch.maps()):
            assert np.array_equal(original.data, restored.data)
        assert np.array_equal(batch[2].data, maps[2].data)

    def test_stack_rejects_mismatched_shapes(self, rng):
        maps = [
            FeatureMap(data=rng.random((3, 6, 5))),
            FeatureMap(data=rng.random((3, 6, 4))),
        ]
        with pytest.raises(ValueError):
            BatchedFeatureMap.from_maps(maps)
        with pytest.raises(ValueError):
            BatchedFeatureMap.from_maps([])

    def test_from_arrays_and_qformat_carry(self, rng):
        arrays = [rng.random((2, 4, 4)) for _ in range(3)]
        batch = BatchedFeatureMap.from_arrays(arrays, qformat="Q6")
        assert batch.qformat == "Q6"
        assert batch[0].qformat == "Q6"
        replaced = batch.with_data(batch.data * 2.0)
        assert replaced.qformat == "Q6"


# -------------------------------------------------------------------- kernels
def _assert_layer_batch_parity(layer: Layer, maps, *, exact: bool = True):
    batch = BatchedFeatureMap.from_maps(maps)
    fused = layer.forward_batch(batch)
    for index, fm in enumerate(maps):
        scalar = layer.forward(fm)
        assert fused[index].data.shape == scalar.data.shape
        if exact:
            assert np.array_equal(fused[index].data, scalar.data), type(layer).__name__
        else:
            assert np.allclose(fused[index].data, scalar.data), type(layer).__name__


class TestForwardBatchKernels:
    @pytest.mark.parametrize(
        "layer, in_channels, size",
        [
            (Conv2d(6, 9, 3, seed=1), 6, (12, 11)),
            (Conv2d(6, 9, 3, padding="zero", seed=2), 6, (12, 11)),
            (Conv2d(6, 4, 1, seed=3), 6, (9, 9)),
            (ReLU(), 5, (7, 8)),
            (ClippedReLU(0.5), 5, (7, 8)),
            (AddBias(np.linspace(-1, 1, 5)), 5, (7, 8)),
            (PixelShuffle(2), 8, (6, 5)),
            (PixelUnshuffle(2), 3, (8, 6)),
            (StridedPool2x2(), 4, (8, 6)),
            (MaxPool2x2(), 4, (8, 6)),
            (ZeroPad(2), 3, (5, 5)),
            (
                Residual([Conv2d(6, 6, 3, seed=4), ReLU(), Conv2d(6, 6, 3, seed=5)]),
                6,
                (13, 12),
            ),
        ],
    )
    def test_every_layer_matches_scalar_bitwise(self, rng, layer, in_channels, size):
        maps = [
            FeatureMap(data=rng.normal(size=(in_channels, *size))) for _ in range(5)
        ]
        _assert_layer_batch_parity(layer, maps)

    def test_sequential_chains_batched(self, rng, mixed_network):
        maps = [FeatureMap(data=rng.random((3, 18, 18))) for _ in range(4)]
        _assert_layer_batch_parity(mixed_network, maps)

    def test_base_class_fallback_is_batch_correct(self, rng):
        class Halve(Layer):
            def forward(self, fm: FeatureMap) -> FeatureMap:
                return fm.with_data(fm.data * 0.5)

            def output_shape(self, c, h, w):
                return c, h, w

        maps = [FeatureMap(data=rng.random((2, 4, 4))) for _ in range(3)]
        _assert_layer_batch_parity(Halve(), maps)

    def test_conv_chunked_batch_matches_single_pass(self, rng):
        # Force the chunked path by exceeding the im2col value budget.
        from repro.nn import layers as layers_module

        conv = Conv2d(8, 8, 3, seed=6)
        maps = [FeatureMap(data=rng.normal(size=(8, 30, 30))) for _ in range(7)]
        budget = layers_module._CONV_BATCH_BUDGET_VALUES
        try:
            layers_module._CONV_BATCH_BUDGET_VALUES = 1
            _assert_layer_batch_parity(conv, maps)
        finally:
            layers_module._CONV_BATCH_BUDGET_VALUES = budget


# ------------------------------------------------------------------ blockflow
class TestBlockParallelFlow:
    @pytest.mark.parametrize("size", [(40, 44), (37, 29)])
    def test_parallel_equals_scalar_bitwise(self, tiny_plain_network, size):
        image = synthetic_image(*size, seed=11)
        scalar, _ = block_based_inference(
            tiny_plain_network, image, output_block=12, parallel=False
        )
        fused, grid = block_based_inference(
            tiny_plain_network, image, output_block=12, parallel=True
        )
        assert grid.num_blocks > 1
        assert np.array_equal(scalar.data, fused.data)
        reference = frame_based_inference(tiny_plain_network, image)
        assert np.allclose(fused.data, reference.data)

    def test_parallel_with_upsampler_and_residuals(self, tiny_sr_network, tiny_ernet):
        for network, size in ((tiny_sr_network, (26, 22)), (tiny_ernet, (33, 27))):
            image = synthetic_image(*size, seed=13)
            scalar, _ = block_based_inference(network, image, 10, parallel=False)
            fused, _ = block_based_inference(network, image, 10, parallel=True)
            assert np.array_equal(scalar.data, fused.data)

    def test_many_matches_per_frame_results(self, tiny_plain_network):
        images = [synthetic_image(30 + step, 28, seed=step) for step in range(3)]
        many = block_based_inference_many(tiny_plain_network, images, 12)
        assert len(many) == len(images)
        for image, (output, grid) in zip(images, many):
            single, single_grid = block_based_inference(
                tiny_plain_network, image, 12, parallel=False
            )
            assert np.array_equal(output.data, single.data)
            assert grid.num_blocks == single_grid.num_blocks
        assert block_based_inference_many(tiny_plain_network, [], 12) == []

    def test_pipeline_run_batch(self, tiny_plain_network):
        pipeline = BlockInferencePipeline(tiny_plain_network, output_block=12)
        images = [synthetic_image(30, 30, seed=seed) for seed in (1, 2)]
        batch = pipeline.run_batch(images)
        for image, result in zip(images, batch):
            single = pipeline.run(image, parallel=False)
            assert np.array_equal(result.output.data, single.output.data)
            assert result.overheads == single.overheads

    def test_quantized_network_batched_parity(self, tiny_plain_network):
        # The fixed-point deployment path: apply a quantization plan through
        # the pipeline, then check scalar and fused execution still agree.
        plan = quantize_network(tiny_plain_network)
        pipeline = BlockInferencePipeline(
            tiny_plain_network, output_block=12, quantization=plan
        )
        image = synthetic_image(31, 29, seed=17)
        fused = pipeline.run(image, parallel=True)
        scalar = pipeline.run(image, parallel=False)
        assert np.array_equal(fused.output.data, scalar.output.data)


# ------------------------------------------------------- serving-stack parity
class TestServingParity:
    @pytest.mark.parametrize("backend", PIXEL_BACKENDS)
    @pytest.mark.parametrize("workload", PIXEL_WORKLOADS)
    def test_catalogue_scalar_vs_parallel(self, backend, workload):
        session = Session(backend=backend, cache=ResultCache())
        for size in WORKLOAD_SIZES[workload]:
            image = synthetic_image(*size, seed=23)
            scalar = session.execute(workload, image, parallel=False, cached=False)
            fused = session.execute(workload, image, parallel=True, cached=False)
            assert np.array_equal(scalar.output.data, fused.output.data), (
                workload,
                backend,
                size,
            )

    @pytest.mark.parametrize("backend", PIXEL_BACKENDS)
    def test_execute_many_matches_per_frame(self, backend):
        session = Session(backend=backend, cache=ResultCache())
        images = [
            synthetic_image(*WORKLOAD_SIZES["denoise"][0], seed=seed)
            for seed in range(3)
        ] + [synthetic_image(*WORKLOAD_SIZES["denoise"][1], seed=9)]
        batch = session.execute_many("denoise", images, cached=False)
        for image, result in zip(images, batch):
            single = session.execute("denoise", image, parallel=False, cached=False)
            assert np.array_equal(result.output.data, single.output.data)

    def test_frame_cache_serves_repeats(self):
        session = Session(backend="ecnn", cache=ResultCache())
        image = synthetic_image(40, 40, seed=29)
        first = session.execute("denoise", image)
        assert session.frame_cache.stats.misses == 1
        second = session.execute("denoise", image)
        assert session.frame_cache.stats.hits == 1
        assert second is first
        # Different pixels, different entry.
        other = session.execute("denoise", synthetic_image(40, 40, seed=30))
        assert not np.array_equal(other.output.data, first.output.data)
        assert session.frame_cache.stats.misses == 2

    def test_execute_many_dedupes_repeated_frames(self):
        session = Session(backend="ecnn", cache=ResultCache())
        image = synthetic_image(40, 40, seed=31)
        results = session.execute_many("denoise", [image, image, image])
        # One compute fans out to every duplicate in the batch.
        assert session.frame_cache.stats.misses == 1
        assert results[1] is results[0] and results[2] is results[0]
        reference = session.execute("denoise", image, parallel=False, cached=False)
        assert np.array_equal(results[0].output.data, reference.output.data)

    def test_execute_many_mixes_cache_hits_and_batch(self):
        session = Session(backend="ecnn", cache=ResultCache())
        images = [synthetic_image(40, 40, seed=seed) for seed in range(4)]
        session.execute("denoise", images[1])  # pre-populate one entry
        results = session.execute_many("denoise", images)
        for image, result in zip(images, results):
            reference = session.execute(
                "denoise", image, parallel=False, cached=False
            )
            assert np.array_equal(result.output.data, reference.output.data)
        assert session.frame_cache.stats.hits >= 1

    def test_engine_execute_frames(self):
        engine = ServingEngine(backend="ecnn", cache=ResultCache())
        images = [synthetic_image(35, 27, seed=seed) for seed in (1, 2)]
        batch = engine.execute_frames("denoise", images, cached=False)
        for image, result in zip(images, batch):
            single = engine.execute_frame(
                "denoise", image, parallel=False, cached=False
            )
            assert np.array_equal(result.output.data, single.output.data)

    def test_recognition_still_has_no_pixel_path(self):
        session = Session(backend="ecnn", cache=ResultCache())
        with pytest.raises(ValueError):
            session.execute_many("recognition", [synthetic_image(32, 32, seed=1)])
