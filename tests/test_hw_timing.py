"""Tests for the eCNN configuration, IDU/CIU timing and processor executor."""

import numpy as np
import pytest

from repro.analysis.workloads import synthetic_image
from repro.core.blockflow import frame_based_inference
from repro.fbisa.compiler import compile_network
from repro.fbisa.isa import BlockBufferId, FeatureOperand, Instruction, Opcode
from repro.hw.ciu import ciu_cycles, engine_activity
from repro.hw.config import DEFAULT_CONFIG, EcnnConfig
from repro.hw.idu import idu_cycles, program_decode_cycles
from repro.hw.processor import BlockExecutionReport, EcnnProcessor
from repro.models.ernet import build_dnernet, build_sr4ernet


class TestConfig:
    def test_table2_figures(self):
        config = DEFAULT_CONFIG
        assert config.total_multipliers == 81_920
        assert config.lconv3x3_multipliers == 73_728
        assert config.lconv1x1_multipliers == 8_192
        assert config.peak_tops == pytest.approx(40.96, rel=0.001)
        assert config.total_block_buffer_bytes == 3 * 512 * 1024
        assert config.parameter_memory_kb == 1288

    def test_block_buffer_holds_128px_blocks(self):
        # A 512 KB buffer holds a 128x128 32-channel 8-bit block exactly.
        assert DEFAULT_CONFIG.max_block_pixels == 128

    def test_with_parameter_memory(self):
        tripled = DEFAULT_CONFIG.with_parameter_memory(3 * 1288)
        assert tripled.parameter_memory_kb == 3 * 1288
        assert tripled.clock_hz == DEFAULT_CONFIG.clock_hz


def _instruction(opcode=Opcode.CONV, tiles=(8, 16), lm=1, ig=1, params=True):
    from repro.fbisa.isa import ParameterOperand

    return Instruction(
        opcode=opcode,
        block_tiles_x=tiles[0],
        block_tiles_y=tiles[1],
        leaf_modules=lm,
        input_groups=ig,
        src=FeatureOperand(BlockBufferId.BB0),
        dst=FeatureOperand(BlockBufferId.BB1),
        params=ParameterOperand(restart=0) if params else None,
    )


class TestUnitTiming:
    def test_ciu_one_cycle_per_tile_leaf_group(self):
        assert ciu_cycles(_instruction()) == 8 * 16
        assert ciu_cycles(_instruction(lm=4)) == 8 * 16 * 4
        assert ciu_cycles(_instruction(lm=2, ig=3)) == 8 * 16 * 6

    def test_idu_256_cycles_per_leaf(self):
        assert idu_cycles(_instruction()) == 256
        assert idu_cycles(_instruction(lm=4, ig=2)) == 2048
        assert idu_cycles(_instruction(params=False)) == 4

    def test_program_decode_cycles(self):
        instructions = [_instruction(), _instruction(lm=2)]
        assert program_decode_cycles(instructions) == 256 + 512

    def test_engine_activity_tracks_er_share(self):
        all_conv = engine_activity([_instruction(), _instruction()])
        assert all_conv.lconv3x3 == 1.0 and all_conv.lconv1x1 == 0.0
        mixed = engine_activity([_instruction(), _instruction(opcode=Opcode.ER)])
        assert 0.0 < mixed.lconv1x1 < 1.0
        empty = engine_activity([])
        assert empty.lconv3x3 == 0.0

    def test_ciu_rate_matches_multiplier_count(self):
        # One leaf-module tile per cycle = 32x32x9 MACs over 8 pixels, which is
        # exactly the LCONV3x3 multiplier count.
        instruction = _instruction(tiles=(1, 1))
        macs_per_cycle = instruction.macs / ciu_cycles(instruction)
        assert macs_per_cycle == pytest.approx(DEFAULT_CONFIG.lconv3x3_multipliers, rel=0.15)


class TestPipeline:
    def test_pipelined_cycles_bounded_by_components(self):
        report = BlockExecutionReport(
            ciu_cycles_per_instruction=(100, 200, 50),
            idu_cycles_per_instruction=(256, 64, 300),
        )
        assert report.pipelined_cycles >= max(report.ciu_total, report.idu_total)
        assert report.pipelined_cycles <= report.ciu_total + report.idu_total
        assert report.idu_bound_stages == 1  # the 300-cycle decode after a 200-cycle stage? no: after 100

    def test_pipeline_dominated_by_ciu_for_large_blocks(self):
        compiled = compile_network(build_dnernet(3, 1, 0), input_block=128)
        processor = EcnnProcessor()
        processor.load(compiled)
        report = processor.block_report()
        assert report.pipelined_cycles < report.ciu_total * 1.1

    def test_empty_report(self):
        assert BlockExecutionReport((), ()).pipelined_cycles == 0


class TestProcessor:
    def test_requires_loaded_model(self):
        with pytest.raises(RuntimeError):
            EcnnProcessor().block_report()

    def test_oversized_model_rejected(self):
        tiny_memory = EcnnConfig(parameter_memory_kb=8)
        compiled = compile_network(build_sr4ernet(8, 4, 0), input_block=128)
        with pytest.raises(ValueError):
            EcnnProcessor(tiny_memory).load(compiled)

    def test_run_image_matches_frame_based(self):
        network = build_dnernet(2, 1, 0)
        compiled = compile_network(network, input_block=64)
        processor = EcnnProcessor()
        processor.load(compiled)
        image = synthetic_image(40, 36, seed=3)
        report = processor.run_image(image, network, output_block=16)
        reference = frame_based_inference(network, image)
        assert report.output is not None
        assert np.allclose(report.output.data, reference.data)
        assert report.total_cycles == report.cycles_per_block * report.grid.num_blocks
        assert report.fps > 0
