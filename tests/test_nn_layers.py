"""Unit tests for convolution, activation and residual layers."""

import numpy as np
import pytest

from repro.nn.layers import AddBias, ClippedReLU, Conv2d, ReLU, Residual
from repro.nn.tensor import FeatureMap


def _reference_conv3x3_valid(data, weights, bias):
    """Naive direct convolution used to validate the im2col implementation."""
    out_ch, in_ch, _, _ = weights.shape
    _, h, w = data.shape
    out = np.zeros((out_ch, h - 2, w - 2))
    for oc in range(out_ch):
        for y in range(h - 2):
            for x in range(w - 2):
                out[oc, y, x] = (
                    np.sum(data[:, y : y + 3, x : x + 3] * weights[oc]) + bias[oc]
                )
    return out


def test_conv3x3_valid_matches_naive_reference(rng):
    conv = Conv2d(2, 3, 3, seed=11)
    data = rng.normal(size=(2, 7, 9))
    expected = _reference_conv3x3_valid(data, conv.weights, conv.bias)
    result = conv.forward(FeatureMap(data))
    assert result.shape == (3, 5, 7)
    assert np.allclose(result.data, expected)


def test_conv1x1_is_channel_mixing(rng):
    conv = Conv2d(4, 2, 1, seed=3)
    data = rng.normal(size=(4, 5, 6))
    result = conv.forward(FeatureMap(data))
    w = conv.weights.reshape(2, 4)
    expected = np.einsum("oc,chw->ohw", w, data) + conv.bias[:, None, None]
    assert np.allclose(result.data, expected)
    assert result.shape == (2, 5, 6)


def test_conv_zero_padding_preserves_size(rng):
    conv = Conv2d(3, 3, 3, padding="zero", seed=1)
    data = rng.normal(size=(3, 6, 6))
    result = conv.forward(FeatureMap(data))
    assert result.shape == (3, 6, 6)
    # Zero padding matches valid convolution on a zero-padded input.
    padded = np.pad(data, ((0, 0), (1, 1), (1, 1)))
    valid = Conv2d(3, 3, 3, weights=conv.weights, bias=conv.bias)
    assert np.allclose(result.data, valid.forward(FeatureMap(padded)).data)


def test_conv_margin_and_parameters():
    conv3 = Conv2d(8, 16, 3)
    conv1 = Conv2d(16, 8, 1)
    padded = Conv2d(8, 8, 3, padding="zero")
    assert conv3.margin == 1
    assert conv1.margin == 0
    assert padded.margin == 0
    assert conv3.num_parameters == 8 * 16 * 9 + 16
    assert conv1.macs_per_output_pixel() == 16 * 8
    assert conv3.macs_per_output_pixel() == 8 * 16 * 9


def test_conv_rejects_invalid_configuration():
    with pytest.raises(ValueError):
        Conv2d(3, 3, 5)
    with pytest.raises(ValueError):
        Conv2d(3, 3, 3, padding="same")
    with pytest.raises(ValueError):
        Conv2d(0, 3, 3)
    with pytest.raises(ValueError):
        Conv2d(3, 3, 3, weights=np.zeros((3, 3, 3)))
    with pytest.raises(ValueError):
        Conv2d(3, 3, 3, bias=np.zeros(4))


def test_conv_rejects_wrong_channel_count(rng):
    conv = Conv2d(3, 4, 3)
    with pytest.raises(ValueError):
        conv.forward(FeatureMap(rng.normal(size=(2, 8, 8))))
    with pytest.raises(ValueError):
        conv.output_shape(2, 8, 8)


def test_conv_too_small_input_raises():
    conv = Conv2d(1, 1, 3)
    with pytest.raises(ValueError):
        conv.forward(FeatureMap(np.zeros((1, 2, 2))))


def test_relu_and_clipped_relu():
    data = np.array([[[-1.0, 0.5], [2.0, 7.0]]])
    assert np.array_equal(
        ReLU().forward(FeatureMap(data)).data, [[[0.0, 0.5], [2.0, 7.0]]]
    )
    assert np.array_equal(
        ClippedReLU(2.0).forward(FeatureMap(data)).data, [[[0.0, 0.5], [2.0, 2.0]]]
    )
    with pytest.raises(ValueError):
        ClippedReLU(0.0)


def test_add_bias():
    layer = AddBias([1.0, -1.0])
    data = np.zeros((2, 2, 2))
    out = layer.forward(FeatureMap(data))
    assert np.allclose(out.data[0], 1.0)
    assert np.allclose(out.data[1], -1.0)
    with pytest.raises(ValueError):
        layer.forward(FeatureMap(np.zeros((3, 2, 2))))


def test_residual_adds_center_cropped_skip(rng):
    body = [Conv2d(4, 4, 3, seed=2)]
    res = Residual(body)
    data = rng.normal(size=(4, 8, 8))
    out = res.forward(FeatureMap(data))
    body_out = body[0].forward(FeatureMap(data))
    assert out.shape == (4, 6, 6)
    assert np.allclose(out.data, body_out.data + data[:, 1:7, 1:7])


def test_residual_margin_accumulates():
    res = Residual([Conv2d(4, 8, 3), ReLU(), Conv2d(8, 4, 3)])
    assert res.margin == 2
    assert res.output_shape(4, 10, 10) == (4, 6, 6)


def test_residual_rejects_channel_change():
    res = Residual([Conv2d(4, 8, 3)])
    with pytest.raises(ValueError):
        res.output_shape(4, 10, 10)
    with pytest.raises(ValueError):
        res.forward(FeatureMap(np.zeros((4, 10, 10))))


def test_residual_requires_body():
    with pytest.raises(ValueError):
        Residual([])
