"""Unit tests for Sequential / Network containers and receptive-field geometry."""

import pytest

from repro.nn.layers import Conv2d, ReLU, Residual
from repro.nn.network import Network, Sequential, iter_conv_layers
from repro.nn.ops import MaxPool2x2, PixelShuffle, PixelUnshuffle
from repro.nn.receptive_field import (
    network_receptive_field,
    output_size_valid,
    per_layer_sizes,
    receptive_field,
    required_input_size,
)
from repro.nn.tensor import FeatureMap


def test_sequential_forward_and_shape(mixed_network, small_image):
    out = mixed_network.forward(small_image)
    c, h, w = mixed_network.output_shape(3, small_image.height, small_image.width)
    assert out.shape == (c, h, w)


def test_sequential_requires_layers():
    with pytest.raises(ValueError):
        Sequential([])


def test_forward_trace_returns_all_intermediates(tiny_plain_network, small_image):
    trace = tiny_plain_network.forward_trace(small_image)
    assert len(trace) == len(tiny_plain_network.layers) + 1
    assert trace[0] is small_image
    assert trace[-1].shape == tiny_plain_network.output_shape(3, 48, 40)


def test_network_metadata():
    net = Network([Conv2d(3, 3, 3)], "demo", upscale=2, metadata={"k": 1})
    assert net.upscale == 2
    assert net.metadata["k"] == 1
    assert "demo" in net.describe()
    with pytest.raises(ValueError):
        Network([Conv2d(3, 3, 3)], "bad", upscale=0)


def test_iter_conv_layers_finds_nested_convs(mixed_network):
    convs = list(iter_conv_layers(mixed_network))
    assert len(convs) == 5
    assert all(isinstance(conv, Conv2d) for conv in convs)


def test_output_size_valid_plain_stack():
    layers = [Conv2d(3, 8, 3), Conv2d(8, 8, 3), Conv2d(8, 3, 3)]
    # xo = xi - 2 * D for a depth-3 plain stack
    assert output_size_valid(20, layers) == 14
    assert required_input_size(14, layers) == 20
    assert receptive_field(layers) == 7


def test_output_size_with_upsampler():
    layers = [Conv2d(3, 12, 3), PixelShuffle(2), Conv2d(3, 3, 3)]
    # (20 - 2) * 2 - 2 = 34
    assert output_size_valid(20, layers) == 34
    assert required_input_size(34, layers) == 20


def test_output_size_with_downsampler():
    layers = [Conv2d(3, 8, 3), MaxPool2x2(), Conv2d(8, 8, 3)]
    # (20 - 2) / 2 - 2 = 7
    assert output_size_valid(20, layers) == 7


def test_output_size_raises_when_block_consumed():
    layers = [Conv2d(3, 3, 3) for _ in range(5)]
    with pytest.raises(ValueError):
        output_size_valid(10, layers)


def test_output_size_rejects_fractional_blocks():
    layers = [MaxPool2x2()]
    with pytest.raises(ValueError):
        output_size_valid(9, layers)


def test_per_layer_sizes_matches_pyramid():
    layers = [Conv2d(3, 8, 3), Conv2d(8, 8, 3)]
    assert per_layer_sizes(10, layers) == [10, 8, 6]


def test_receptive_field_of_residual_network():
    net = Sequential(
        [
            Conv2d(3, 8, 3),
            Residual([Conv2d(8, 8, 3), ReLU(), Conv2d(8, 8, 3)]),
            Conv2d(8, 3, 3),
        ]
    )
    assert net.margin == 4
    assert network_receptive_field(net) == 9


def test_receptive_field_with_unshuffle():
    layers = [PixelUnshuffle(2), Conv2d(12, 12, 3), PixelShuffle(2)]
    # One output pixel needs a 2x-downsampled 3x3 window -> 6 input pixels + alignment.
    assert receptive_field(layers) >= 5


def test_shape_propagation_equals_execution(mixed_network, rng):
    image = FeatureMap(rng.normal(size=(3, 32, 36)))
    predicted = mixed_network.output_shape(3, 32, 36)
    actual = mixed_network.forward(image).shape
    assert predicted == actual
