"""Static-analysis suite: plan verifier, repo linter, CLI and rule catalogue.

Three layers of coverage:

* **injection** — hand-built broken networks/programs/plans must be rejected
  with the documented rule id (the acceptance criterion of the verifier);
* **fuzz** — random layer stacks from the shared parity generator: whatever
  passes ``verify_network`` must execute, whatever is mutated to be broken
  must fail verification *and* execution;
* **catalogue** — the real workload catalogue across every registered
  backend must verify with zero errors (the blocking-CI contract).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import Session, available_backends
from repro.api.results import CompiledPlan
from repro.check import (
    CheckReport,
    PlanVerificationError,
    RULES,
    Severity,
    reports_to_json,
    verify_network,
    verify_plan,
    verify_program,
)
from repro.check.cli import main as check_main
from repro.fbisa.compiler import compile_network
from repro.fbisa.isa import (
    BlockBufferId,
    FeatureOperand,
    InferenceType,
    Instruction,
    Opcode,
)
from repro.fbisa.program import (
    Program,
    ProgramValidationError,
    instruction_violations,
)
from repro.nn.layers import Conv2d, ReLU
from repro.nn.network import Sequential
from repro.nn.tensor import FeatureMap
from repro.runtime.cache import ResultCache
from repro.specs import SPECIFICATIONS

REPO_ROOT = Path(__file__).resolve().parents[1]


def _operand(buffer: str, qformat: str = "Q6") -> FeatureOperand:
    return FeatureOperand(BlockBufferId[buffer], qformat)


def _conv(
    src: str,
    dst: str,
    *,
    tiles=(4, 8),
    src_q: str = "Q6",
    dst_q: str = "Q6",
    inference: InferenceType = InferenceType.TRUNCATED,
) -> Instruction:
    return Instruction(
        Opcode.CONV,
        tiles[0],
        tiles[1],
        src=_operand(src, src_q),
        dst=_operand(dst, dst_q),
        inference=inference,
    )


def _program(name: str, *instructions: Instruction) -> Program:
    program = Program(name=name)
    for instruction in instructions:
        program.append(instruction)
    return program


def _rule_ids(report: CheckReport) -> list:
    return [diagnostic.rule_id for diagnostic in report.diagnostics]


# ------------------------------------------------------------- rule catalogue
class TestRuleCatalogue:
    def test_rule_ids_are_stable_and_well_formed(self):
        for rule_id, rule in RULES.items():
            assert rule_id == rule.id
            assert rule_id.startswith("ECNN") and rule_id[4:].isdigit()
            assert rule.title and rule.rationale
            assert isinstance(rule.severity, Severity)

    def test_verifier_and_lint_ranges_partition_the_catalogue(self):
        # 1xx = plan verifier, 2xx = repo lint; the doc and CLI rely on this.
        for rule_id in RULES:
            assert rule_id[4] in ("1", "2")

    def test_unknown_rule_is_rejected(self):
        report = CheckReport(subject="x")
        with pytest.raises(KeyError):
            report.add("ECNN999", "no such rule")

    def test_report_rendering_and_json(self):
        report = CheckReport(subject="demo")
        report.add("ECNN101", "bad shape", location="layer 0 (conv)")
        report.add("ECNN131", "clips a little")
        assert not report.ok
        assert len(report.errors) == 1 and len(report.infos) == 1
        assert "ECNN131" in report.render(verbose=True)
        assert "ECNN131" not in report.render(verbose=False)
        payload = json.loads(reports_to_json([report]))
        assert payload["ok"] is False and payload["errors"] == 1
        assert payload["reports"][0]["subject"] == "demo"
        assert payload["reports"][0]["diagnostics"][0]["rule"] == "ECNN101"

    def test_every_rule_is_documented(self):
        doc = (REPO_ROOT / "docs" / "static-analysis.md").read_text(encoding="utf-8")
        for rule_id in RULES:
            assert rule_id in doc, f"{rule_id} missing from docs/static-analysis.md"


# ------------------------------------------------------------ network checks
class TestVerifyNetwork:
    def test_catalogue_network_is_clean(self, tiny_plain_network):
        assert verify_network(tiny_plain_network, input_block=64).ok

    def test_channel_mismatch_is_ecnn101(self):
        bad = Sequential(
            [Conv2d(3, 8, 3, seed=1), Conv2d(4, 8, 3, seed=2)], name="mismatch"
        )
        report = verify_network(bad, input_block=32)
        assert _rule_ids(report) == ["ECNN101"]
        assert "layer 1" in report.diagnostics[0].location

    def test_block_consumed_by_margins_is_an_error(self):
        deep = Sequential(
            [Conv2d(3, 4, 3, padding="valid", seed=seed) for seed in range(1, 6)],
            name="deep",
        )
        report = verify_network(deep, input_block=8)
        assert not report.ok
        assert report.diagnostics[0].rule_id in ("ECNN101", "ECNN102")

    def test_oversized_block_is_ecnn120_when_truncated(self):
        truncated = Sequential([Conv2d(3, 4, 3, padding="valid", seed=1)], name="t")
        report = verify_network(truncated, input_block=256)
        assert "ECNN120" in _rule_ids(report)

    def test_oversized_block_is_info_for_zero_padded_networks(self):
        whole_image = Sequential([Conv2d(3, 4, 3, padding="zero", seed=1)], name="z")
        assert whole_image.margin == 0
        report = verify_network(whole_image, input_block=256)
        assert _rule_ids(report) == ["ECNN122"]
        assert report.ok


# ------------------------------------------------------------ program checks
class TestVerifyProgram:
    def test_well_formed_program_is_clean(self):
        program = _program("good", _conv("DI", "BB0"), _conv("BB0", "DO"))
        assert verify_program(program).ok

    def test_read_before_write_is_ecnn110(self):
        report = verify_program(_program("rbw", _conv("BB1", "DO"), _conv("DI", "DO")))
        assert "ECNN110" in _rule_ids(report)

    def test_src_dst_conflict_is_ecnn111(self):
        report = verify_program(
            _program("conflict", _conv("DI", "BB0"), _conv("BB0", "BB0"), _conv("BB0", "DO"))
        )
        assert "ECNN111" in _rule_ids(report)

    def test_virtual_buffer_misuse_is_ecnn112(self):
        report = verify_program(_program("do-src", _conv("DO", "BB0"), _conv("DI", "DO")))
        assert "ECNN112" in _rule_ids(report)

    def test_missing_di_and_do_are_ecnn113_114(self):
        report = verify_program(_program("island", _conv("DI", "BB0")))
        assert "ECNN114" in _rule_ids(report)
        report = verify_program(
            _program("no-di", _conv("BB0", "DO"))  # also read-before-write
        )
        assert "ECNN113" in _rule_ids(report)

    def test_empty_program_reports_both_dataflow_rules(self):
        report = verify_program(Program(name="empty"))
        assert set(_rule_ids(report)) == {"ECNN113", "ECNN114"}

    def test_oversized_block_buffer_operand_is_ecnn120(self):
        # 256x256 = 65536 stored pixels; one 512 KB buffer holds 16384 per
        # 32-channel group.  This is the ISSUE's canonical injected breakage.
        report = verify_program(_program("big", _conv("DI", "DO", tiles=(64, 128))))
        assert _rule_ids(report) == ["ECNN120"]
        assert report.diagnostics[0].location == "line 0 (CONV)"

    def test_oversized_zero_padded_block_is_streamed_info(self):
        report = verify_program(
            _program(
                "zp",
                _conv("DI", "DO", tiles=(64, 128), inference=InferenceType.ZERO_PADDED),
            )
        )
        assert _rule_ids(report) == ["ECNN122"]
        assert report.ok

    def test_dead_overwrite_is_ecnn140(self):
        program = _program(
            "dead", _conv("DI", "BB0"), _conv("DI", "BB0"), _conv("BB0", "DO")
        )
        report = verify_program(program)
        assert _rule_ids(report) == ["ECNN140"]
        assert report.diagnostics[0].location == "line 0 (CONV)"

    def test_unparseable_qformat_is_ecnn150(self):
        report = verify_program(_program("badq", _conv("DI", "DO", src_q="Z9")))
        assert "ECNN150" in _rule_ids(report)


# ----------------------------------------------------- structured validation
class TestProgramValidationContext:
    def test_validation_error_carries_index_and_opcode(self):
        program = _program("rbw", _conv("BB1", "DO"))
        with pytest.raises(ProgramValidationError) as excinfo:
            program.validate()
        error = excinfo.value
        assert error.program == "rbw"
        assert error.index == 0
        assert error.opcode is Opcode.CONV
        assert "line 0" in str(error)

    def test_instruction_violations_classify_without_mutating(self):
        written = set()
        kinds = [
            violation.kind
            for violation in instruction_violations(0, _conv("BB1", "DO"), written)
        ]
        assert kinds == ["read-before-write"]
        assert written == set()  # pure: the caller owns the written set

    def test_compiled_catalogue_programs_have_no_violations(self):
        session = Session(backend="ecnn", cache=ResultCache())
        for workload in session.catalogue():
            program = session.compile(workload).payload.program
            assert list(program.structural_violations()) == []


# ----------------------------------------------------------- interval checks
class TestIntervalAnalysis:
    def _plan(self, network, block=64):
        model = compile_network(network, input_block=block)
        return CompiledPlan(
            backend="ecnn",
            model_name=network.name,
            spec_name="HD30",
            network=network,
            spec=SPECIFICATIONS["HD30"],
            input_block=block,
            payload=model,
        )

    def test_guaranteed_overflow_bias_is_ecnn130(self):
        conv = Conv2d(3, 32, 3, seed=1)
        conv.bias[:] = 1000.0  # lifts the whole interval far above Q6's 1.98
        network = Sequential([conv, ReLU()], name="hotbias")
        report = verify_plan(self._plan(network))
        assert "ECNN130" in _rule_ids(report)
        assert not report.ok

    def test_mild_range_excess_is_clipping_info(self):
        network = Sequential([Conv2d(3, 32, 3, seed=1), ReLU()], name="mild")
        report = verify_plan(self._plan(network))
        assert report.ok
        assert "ECNN130" not in _rule_ids(report)
        assert "ECNN131" in _rule_ids(report)


# ------------------------------------------------------------------- fuzzing
@pytest.mark.parametrize("seed", range(12))
class TestFuzzedNetworks:
    """Random stacks from the shared parity generator, both directions."""

    BLOCK = 24

    def test_verified_stack_executes(self, seed, draw_layer_stack):
        rng = np.random.default_rng(4000 + seed)
        channels = int(rng.integers(2, 7))
        network = draw_layer_stack(rng, channels)
        report = verify_network(
            network, input_block=self.BLOCK, in_channels=channels
        )
        assert report.ok, report.render()
        output = network.forward(
            FeatureMap(data=rng.normal(size=(channels, self.BLOCK, self.BLOCK)))
        )
        assert output.data.shape[1] > 0 and output.data.shape[2] > 0

    def test_channel_mutation_fails_verification_and_execution(
        self, seed, draw_layer_stack
    ):
        rng = np.random.default_rng(4000 + seed)
        channels = int(rng.integers(2, 7))
        stack = draw_layer_stack(rng, channels)
        # Splice in a conv whose input width no drawn stack can produce.
        broken = Sequential(
            list(stack.layers) + [Conv2d(channels + 64, 3, 3, seed=0)],
            name="mutated",
        )
        report = verify_network(
            broken, input_block=self.BLOCK, in_channels=channels
        )
        assert "ECNN101" in _rule_ids(report)
        with pytest.raises(ValueError):
            broken.forward(
                FeatureMap(data=rng.normal(size=(channels, self.BLOCK, self.BLOCK)))
            )


# ----------------------------------------------------------------- catalogue
class TestCatalogueAcrossBackends:
    def test_every_backend_workload_pair_verifies_clean(self):
        reports = {}
        for backend in available_backends():
            session = Session(backend=backend, cache=ResultCache(), verify=False)
            for workload in session.catalogue():
                plan = session.compile(workload)
                reports[(backend, workload)] = verify_plan(plan, config=session.config)
        assert all(report.ok for report in reports.values()), "\n".join(
            report.render() for report in reports.values() if not report.ok
        )
        # Pinned known findings: the style-transfer model genuinely exceeds
        # the raw parameter memory (the paper closes the gap with entropy
        # coding), and recognition's whole-image block is streamed.
        style = reports[("ecnn", "style_transfer")]
        assert [d.rule_id for d in style.warnings] == ["ECNN121"]
        assert "entropy coding" in style.warnings[0].message
        recognition = reports[("ecnn", "recognition")]
        assert "ECNN122" in _rule_ids(recognition)
        for backend in available_backends():
            if backend == "ecnn":
                continue
            assert "ECNN122" in _rule_ids(reports[(backend, "recognition")])


# --------------------------------------------------------- session gating
class _BrokenPlanBackend:
    """A backend double whose compile emits a statically broken plan."""

    name = "broken-double"
    description = "emits a channel-mismatched plan for verifier gating tests"

    def compile(self, network, spec):
        bad = Sequential(
            [Conv2d(3, 8, 3, seed=1), Conv2d(4, 8, 3, seed=2)], name="broken"
        )
        return CompiledPlan(
            backend=self.name,
            model_name="broken",
            spec_name=spec.name,
            network=bad,
            spec=spec,
            input_block=32,
        )

    def profile(self, plan, spec):
        raise NotImplementedError

    def execute(self, plan, frame):
        raise NotImplementedError

    def cost(self):
        raise NotImplementedError


class TestSessionGating:
    def test_broken_plan_is_rejected_by_default(self):
        session = Session(backend=_BrokenPlanBackend(), cache=ResultCache())
        with pytest.raises(PlanVerificationError) as excinfo:
            session.compile("denoise")
        report = excinfo.value.report
        assert "ECNN101" in _rule_ids(report)
        # The broken plan never entered the cache: compiling again re-runs
        # the verification instead of serving a poisoned entry.
        with pytest.raises(PlanVerificationError):
            session.compile("denoise")

    def test_verify_false_opts_out(self):
        session = Session(
            backend=_BrokenPlanBackend(), cache=ResultCache(), verify=False
        )
        plan = session.compile("denoise")
        assert plan.model_name == "broken"

    def test_catalogue_compiles_verified_by_default(self):
        session = Session(backend="ecnn", cache=ResultCache())
        assert session.verify is True
        assert session.compile("denoise").model_name


# ------------------------------------------------------------------ repo lint
def _load_lint():
    spec = importlib.util.spec_from_file_location(
        "repro_lint_under_test", REPO_ROOT / "tools" / "repro_lint.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def lint():
    return _load_lint()


class TestRepoLint:
    def test_unseeded_numpy_rng_in_tests_is_ecnn201(self, lint):
        source = "import numpy as np\nx = np.random.rand(3)\n"
        report = lint.lint_source(source, "tests/test_demo.py")
        assert [d.rule_id for d in report.diagnostics] == ["ECNN201"]
        assert report.diagnostics[0].location == "tests/test_demo.py:2"

    def test_seeded_generators_are_allowed(self, lint):
        source = (
            "import numpy as np\nimport random\n"
            "rng = np.random.default_rng(7)\nlocal = random.Random(7)\n"
        )
        assert lint.lint_source(source, "tests/test_demo.py").ok

    def test_rng_rule_is_scoped_to_tests_and_soak(self, lint):
        source = "import numpy as np\nx = np.random.rand(3)\n"
        assert lint.lint_source(source, "src/repro/nn/demo.py").ok
        assert not lint.lint_source(source, "src/repro/soak/demo.py").ok

    def test_stdlib_global_random_is_ecnn201(self, lint):
        source = "import random\nx = random.random()\n"
        report = lint.lint_source(source, "tests/test_demo.py")
        assert [d.rule_id for d in report.diagnostics] == ["ECNN201"]

    def test_incomplete_backend_is_ecnn202(self, lint):
        source = (
            "from repro.api.backend import register_backend\n"
            "@register_backend\n"
            "class Half:\n"
            "    name = 'half'\n"
            "    def compile(self, network, spec): ...\n"
        )
        report = lint.lint_source(source, "src/repro/api/demo.py")
        assert [d.rule_id for d in report.diagnostics] == ["ECNN202"]
        assert "description" in report.diagnostics[0].message

    def test_backend_protocol_accepts_same_module_mixin(self, lint):
        source = (
            "from repro.api.backend import register_backend\n"
            "class _Mixin:\n"
            "    def execute(self, plan, frame): ...\n"
            "    def cost(self): ...\n"
            "@register_backend\n"
            "class Full(_Mixin):\n"
            "    name = 'full'\n"
            "    description = 'complete'\n"
            "    def compile(self, network, spec): ...\n"
            "    def profile(self, plan, spec): ...\n"
        )
        assert lint.lint_source(source, "src/repro/api/demo.py").ok

    def test_non_dataclass_boundary_type_is_ecnn203(self, lint):
        source = "class ShardHandle:\n    backend: str\n"
        report = lint.lint_source(source, "src/repro/runtime/demo.py")
        assert [d.rule_id for d in report.diagnostics] == ["ECNN203"]

    def test_callable_boundary_field_is_ecnn203(self, lint):
        source = (
            "from dataclasses import dataclass\n"
            "from typing import Callable\n"
            "@dataclass\n"
            "class WorkRequest:\n"
            "    builder: Callable[[], int]\n"
        )
        report = lint.lint_source(source, "src/repro/runtime/demo.py")
        assert [d.rule_id for d in report.diagnostics] == ["ECNN203"]

    def test_wallclock_in_bench_is_ecnn204(self, lint):
        source = "import time\nstamp = time.time()\n"
        report = lint.lint_source(source, "src/repro/bench/demo.py")
        assert [d.rule_id for d in report.diagnostics] == ["ECNN204"]
        assert lint.lint_source(source, "src/repro/api/demo.py").ok
        assert lint.lint_source(
            "import time\nd = time.perf_counter()\n", "src/repro/bench/demo.py"
        ).ok

    def test_unseeded_video_generator_is_ecnn205(self, lint):
        source = (
            "import numpy as np\n"
            "def video_noise_trace(rate_rps, users):\n"
            "    rng = np.random.default_rng()\n"
            "    return rng\n"
        )
        report = lint.lint_source(source, "src/repro/soak/demo.py")
        assert [d.rule_id for d in report.diagnostics] == ["ECNN205", "ECNN205"]
        assert "seed" in report.diagnostics[0].message
        assert report.diagnostics[1].location == "src/repro/soak/demo.py:3"

    def test_seeded_video_generator_passes_ecnn205(self, lint):
        source = (
            "import numpy as np\n"
            "def video_stream_trace(*, rate_rps, users, seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng\n"
        )
        assert lint.lint_source(source, "src/repro/soak/demo.py").ok
        assert lint.lint_source(source, "tests/helpers.py").ok

    def test_video_generator_rule_is_scoped(self, lint):
        # Outside tests/soak/bench the video-generator rule stays silent —
        # runtime code may build sequences however it likes.
        source = "def make_video_sequence(kind):\n    return []\n"
        assert lint.lint_source(source, "src/repro/runtime/demo.py").ok
        report = lint.lint_source(source, "src/repro/bench/demo.py")
        assert [d.rule_id for d in report.diagnostics] == ["ECNN205"]

    def test_non_numeric_deadline_field_is_ecnn206(self, lint):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class JobRequest:\n"
            "    deadline_s: str = 'soon'\n"
        )
        report = lint.lint_source(source, "src/repro/gateway/demo.py")
        assert [d.rule_id for d in report.diagnostics] == ["ECNN206"]
        assert "deadline_s" in report.diagnostics[0].message

    def test_computed_deadline_default_is_ecnn206(self, lint):
        source = (
            "import time\n"
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class JobRequest:\n"
            "    priority: int = 0\n"
            "    deadline_s: float = time.monotonic()\n"
        )
        report = lint.lint_source(source, "src/repro/gateway/demo.py")
        assert [d.rule_id for d in report.diagnostics] == ["ECNN206"]
        assert report.diagnostics[0].location == "src/repro/gateway/demo.py:6"

    def test_plain_number_deadline_fields_pass_ecnn206(self, lint):
        source = (
            "import math\n"
            "from dataclasses import dataclass\n"
            "from typing import Optional\n"
            "@dataclass\n"
            "class JobRequest:\n"
            "    deadline_s: float = math.inf\n"
            "    priority: int = 0\n"
            "    soft_deadline_s: Optional[float] = None\n"
        )
        assert lint.lint_source(source, "src/repro/gateway/demo.py").ok
        # The rule only watches boundary types; other classes are free.
        free = (
            "class Planner:\n"
            "    deadline_policy: str = 'edf'\n"
        )
        assert lint.lint_source(free, "src/repro/gateway/demo.py").ok

    def test_incomplete_kernel_set_is_ecnn207(self, lint):
        source = (
            "from repro.kernels import register_kernel\n"
            "@register_kernel\n"
            "class HalfKernels:\n"
            "    name = 'half'\n"
            "    def conv2d(self, data, weights, bias): ...\n"
        )
        report = lint.lint_source(source, "src/repro/kernels/demo.py")
        assert [d.rule_id for d in report.diagnostics] == ["ECNN207"]
        assert "tolerance" in report.diagnostics[0].message

    def test_complete_kernel_set_passes_ecnn207(self, lint):
        source = (
            "from repro.kernels import register_kernel\n"
            "@register_kernel\n"
            "class FullKernels:\n"
            "    name = 'full'\n"
            "    description = 'complete'\n"
            "    tolerance = 0.0\n"
            "    def available(self): ...\n"
            "    def warmup(self): ...\n"
            "    def conv2d(self, data, weights, bias): ...\n"
            "    def conv2d_batch(self, data, weights, bias): ...\n"
            "    def quantize_to_codes(self, values, step, lo, hi): ...\n"
            "    def fraction_search(self, values, fracs, lo, hi, norm): ...\n"
        )
        assert lint.lint_source(source, "src/repro/kernels/demo.py").ok

    def test_unregistered_conv_class_in_kernels_is_ecnn207(self, lint):
        source = (
            "class ShadowKernels:\n"
            "    def conv2d(self, data, weights, bias): ...\n"
            "    def conv2d_batch(self, data, weights, bias): ...\n"
        )
        report = lint.lint_source(source, "src/repro/kernels/demo.py")
        assert [d.rule_id for d in report.diagnostics] == ["ECNN207"]
        assert "register_kernel" in report.diagnostics[0].message
        # The same class outside the kernels package is not a kernel set.
        assert lint.lint_source(source, "src/repro/nn/demo.py").ok

    def test_module_level_numba_import_in_kernels_is_ecnn207(self, lint):
        source = "import numba\n"
        report = lint.lint_source(source, "src/repro/kernels/demo.py")
        assert [d.rule_id for d in report.diagnostics] == ["ECNN207"]
        assert report.diagnostics[0].location == "src/repro/kernels/demo.py:1"
        # try/except at module level still imports at import time.
        guarded = (
            "try:\n"
            "    from numba import njit\n"
            "except ImportError:\n"
            "    njit = None\n"
        )
        assert not lint.lint_source(guarded, "src/repro/kernels/demo.py").ok
        # A lazy in-function import is exactly the gating the rule wants,
        # and module-level numba imports outside the kernels scope are free.
        lazy = "def _compile():\n    from numba import njit\n    return njit\n"
        assert lint.lint_source(lazy, "src/repro/kernels/demo.py").ok
        assert lint.lint_source(source, "src/repro/nn/demo.py").ok

    def test_repository_is_lint_clean(self, lint):
        reports = lint.lint_paths(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")], root=REPO_ROOT
        )
        assert sum(len(report.errors) for report in reports) == 0, "\n".join(
            report.render() for report in reports
        )

    def test_cli_exit_codes(self, lint, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert lint.main([str(clean)]) == 0
        dirty = tmp_path / "tests" / "test_dirty.py"
        dirty.parent.mkdir()
        dirty.write_text("import random\nrandom.seed(1)\n", encoding="utf-8")
        capsys.readouterr()
        assert lint.main([str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False and payload["errors"] == 1
        assert lint.main([str(dirty)]) == 1


# ------------------------------------------------------------------ check CLI
class TestCheckCli:
    def test_single_backend_single_workload_is_green(self, capsys):
        assert check_main(["--backend", "ecnn", "--workload", "denoise"]) == 0
        out = capsys.readouterr().out
        assert "ecnn:" in out and "0 error(s)" in out

    def test_json_output_is_machine_readable(self, capsys):
        assert (
            check_main(
                ["--backend", "ecnn", "--workload", "denoise", "--format", "json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["reports"][0]["subject"].startswith("ecnn:")

    def test_unknown_workload_exits_2(self, capsys):
        assert check_main(["--backend", "ecnn", "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_all_backends_flag_covers_the_registry(self, capsys):
        assert check_main(["--all-backends", "--workload", "recognition"]) == 0
        out = capsys.readouterr().out
        for backend in available_backends():
            assert f"{backend}:" in out
