"""The repro.bench harness: determinism, schema round-trip, suite smoke run,
and the hot-path memoization contract it measures."""

from __future__ import annotations

import json

import pytest

from repro import hotpath
from repro.api import Session
from repro.bench import (
    BenchDeterminismError,
    BenchReport,
    BenchResult,
    BenchScenario,
    BenchSuite,
    CATALOGUE,
    SCHEMA,
    ScenarioOutcome,
    compare_reports,
    default_suite,
    next_output_path,
    run_scenario,
    suite_backends,
)
from repro.bench.harness import ScenarioRegression, find_regressions
from repro.bench.cli import main as bench_main
from repro.runtime.cache import ResultCache
from repro.runtime.workloads import workload


# ---------------------------------------------------------------------- suite
class TestSuiteShape:
    def test_scenario_ids_are_stable_and_unique(self):
        suite = default_suite()
        ids = suite.scenario_ids()
        assert len(ids) == len(set(ids))
        # Scenario ids are part of the BENCH_<n>.json contract: changing one
        # breaks perf-trajectory comparisons across commits, so they are
        # pinned here.  Extend the list when adding scenarios.
        assert ids == (
            "profile_cold@ecnn",
            "profile_memoized@ecnn",
            "profile_warm_cache@ecnn",
            "sweep_backends@diffy+ecnn+eyeriss+frame_based+ideal+scale_sim",
            "serving_demo_i1_b8@ecnn",
            "serving_demo_i2_b8@ecnn",
            "serving_demo_i4_b16@ecnn",
            "serving_steady_i2_b8@ecnn",
            "serving_burst_i2_b8@eyeriss",
            "cluster_scale@ecnn",
            "cluster_frames@ecnn",
            "soak_chaos@ecnn",
            "gateway_slo@ecnn",
            "execute_frame_denoise_96px@ecnn",
            "execute_frame_denoise_96px@frame_based",
            "execute_frame_parallel@ecnn",
            "execute_frames_batch@ecnn",
            "video_stream@ecnn",
            "hotpath_memoization@ecnn",
            "kernel_sweep@ecnn",
        )

    def test_issue_coverage_floor(self):
        # The harness must cover >= 5 scenarios across >= 3 backends.
        suite = default_suite()
        assert len(suite.scenarios) >= 5
        assert len(suite_backends(suite)) >= 3

    def test_select_filters_by_substring(self):
        suite = default_suite().select(["serving_demo"])
        assert all("serving_demo" in sid for sid in suite.scenario_ids())
        with pytest.raises(KeyError):
            default_suite().select(["no-such-scenario"])

    def test_duplicate_ids_rejected(self):
        scenario = default_suite().scenarios[0]
        with pytest.raises(ValueError):
            BenchSuite("dup", [scenario, scenario])


# ---------------------------------------------------------------- smoke + run
class TestSuiteRun:
    def test_smoke_run_every_scenario_tiny_budget(self):
        report = default_suite().run(repeats=1)
        assert report.schema == SCHEMA
        assert len(report.results) == len(default_suite().scenarios)
        for result in report.results:
            assert result.repeats == 1
            assert len(result.wall_s) == 1
            assert result.wall_s[0] > 0
            assert result.units_per_run > 0
            assert result.throughput > 0
        by_id = {result.scenario: result for result in report.results}
        # The A/B scenario must record a real, positive measured speedup.
        extra = dict(by_id["hotpath_memoization@ecnn"].extra)
        assert extra["speedup"] == extra["baseline_s"] / extra["optimized_s"]
        assert extra["speedup"] > 1.0
        # Pixel outputs are bit-comparable across backends, so the two
        # execute_frame scenarios must agree on the output checksum.
        ecnn = dict(by_id["execute_frame_denoise_96px@ecnn"].figures)
        frame = dict(by_id["execute_frame_denoise_96px@frame_based"].figures)
        assert ecnn == frame
        # The pixel A/B records the fresh scalar/fused times and the cached
        # serving steady state (its run already verified bit-identity).
        pixel = dict(by_id["execute_frame_parallel@ecnn"].extra)
        assert pixel["speedup"] == pixel["baseline_s"] / pixel["optimized_s"]
        assert pixel["fusion_speedup"] == pixel["baseline_s"] / pixel["parallel_fresh_s"]
        # The A/B scenario and the plain execute_frame scenario serve the
        # same seeded frame, so their figures must agree too.
        assert dict(by_id["execute_frame_parallel@ecnn"].figures) == ecnn
        batch = dict(by_id["execute_frames_batch@ecnn"].extra)
        assert batch["speedup"] == batch["baseline_s"] / batch["optimized_s"]
        # The cluster scaling scenario records a monotonically-increasing
        # simulated throughput curve (it raises inside the run otherwise)
        # and verified pixel identity against the single-process engine.
        scale = dict(by_id["cluster_scale@ecnn"].figures)
        curve = [scale[f"throughput_fps:w{workers}"] for workers in (1, 2, 4)]
        assert curve[0] < curve[1] < curve[2]
        assert dict(by_id["cluster_scale@ecnn"].extra)["scaling"] == curve[2] / curve[0]
        scatter = dict(by_id["cluster_frames@ecnn"].extra)
        assert scatter["speedup"] == scatter["baseline_s"] / scatter["optimized_s"]

    def test_figures_are_deterministic_across_runs(self):
        suite = default_suite().select(["profile_cold"])
        first = suite.run(repeats=2).results[0]
        second = suite.run(repeats=1).results[0]
        assert first.figures == second.figures
        # And they match the session layer's own answers.
        session = Session(backend="ecnn", cache=ResultCache())
        expected = tuple(
            (f"fps:{name}", 1.0 / session.profile(name).frame_latency_s)
            for name in CATALOGUE
        )
        assert first.figures == expected

    def test_nondeterministic_scenario_is_rejected(self):
        ticks = iter(range(100))

        def run(recorder):
            return ScenarioOutcome(units=1.0, figures=(("tick", float(next(ticks))),))

        scenario = BenchScenario(
            name="broken", description="", backends=("ecnn",), unit="runs", run=run
        )
        with pytest.raises(BenchDeterminismError):
            run_scenario(scenario, repeats=2)

    def test_phase_breakdown_is_recorded(self):
        suite = default_suite().select(["profile_memoized"])
        result = suite.run(repeats=1).results[0]
        phases = dict(result.phases)
        assert set(phases) == {"compile", "profile"}
        assert all(seconds >= 0 for seconds in phases.values())


# ----------------------------------------------------------------- round trip
class TestJsonSchema:
    def test_report_round_trips_through_json(self):
        report = default_suite().select(["profile_warm_cache"]).run(repeats=1)
        text = json.dumps(report.to_json_dict())
        restored = BenchReport.from_json_dict(json.loads(text))
        assert restored == report

    def test_save_and_load(self, tmp_path):
        report = default_suite().select(["serving_demo_i1"]).run(repeats=1)
        path = tmp_path / "BENCH_x.json"
        report.save(path)
        assert BenchReport.load(path) == report

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            BenchReport.from_json_dict({"schema": "repro-bench/999", "results": []})

    def test_next_output_path_picks_first_free_index(self, tmp_path):
        assert next_output_path(tmp_path).name == "BENCH_0.json"
        (tmp_path / "BENCH_0.json").write_text("{}")
        (tmp_path / "BENCH_1.json").write_text("{}")
        assert next_output_path(tmp_path).name == "BENCH_2.json"

    def test_compare_reports_renders_speedup_column(self):
        result = BenchResult(
            scenario="s@ecnn",
            description="",
            backends=("ecnn",),
            unit="runs",
            repeats=1,
            wall_s=(0.2,),
            units_per_run=1.0,
        )
        before = BenchReport(suite="default", results=(result,), repeats=1)
        faster = BenchResult(
            scenario="s@ecnn",
            description="",
            backends=("ecnn",),
            unit="runs",
            repeats=1,
            wall_s=(0.1,),
            units_per_run=1.0,
        )
        after = BenchReport(suite="default", results=(faster,), repeats=1)
        assert "2.00x" in compare_reports(before, after)


# ------------------------------------------------------- regression edge cases
def _result(scenario: str, best_s: float) -> BenchResult:
    return BenchResult(
        scenario=scenario,
        description="",
        backends=("ecnn",),
        unit="runs",
        repeats=1,
        wall_s=(best_s,),
        units_per_run=1.0,
    )


def _report(*results: BenchResult) -> BenchReport:
    return BenchReport(suite="default", results=tuple(results), repeats=1)


class TestRegressionEdgeCases:
    def test_empty_reports_have_no_regressions(self):
        empty = _report()
        assert find_regressions(empty, empty, 0.0) == []
        # The comparison renders its header but no scenario rows.
        rendered = compare_reports(empty, empty)
        assert "Bench comparison" in rendered
        assert "@" not in rendered

    def test_disjoint_scenario_ids_never_regress(self):
        before = _report(_result("old_only@ecnn", 0.1))
        after = _report(_result("new_only@ecnn", 99.0))
        assert find_regressions(before, after, 0.0) == []
        assert "new_only" not in compare_reports(before, after)

    def test_half_empty_reports(self):
        populated = _report(_result("s@ecnn", 0.1))
        assert find_regressions(_report(), populated, 0.0) == []
        assert find_regressions(populated, _report(), 0.0) == []

    def test_zero_time_baseline_with_measurable_after_is_infinite(self):
        before = _report(_result("s@ecnn", 0.0))
        after = _report(_result("s@ecnn", 0.001))
        regressions = find_regressions(before, after, 1e9)  # any finite bar
        assert len(regressions) == 1
        assert regressions[0].regression_pct == float("inf")
        assert "+inf%" in regressions[0].describe()

    def test_zero_time_baseline_and_after_is_not_a_regression(self):
        # Both unmeasurably fast: nothing got slower.
        zero = _report(_result("s@ecnn", 0.0))
        assert find_regressions(zero, zero, 0.0) == []
        assert ScenarioRegression("s@ecnn", 0.0, 0.0).regression_pct == 0.0

    def test_threshold_validation_and_boundary(self):
        with pytest.raises(ValueError):
            find_regressions(_report(), _report(), -1.0)
        before = _report(_result("s@ecnn", 0.1))
        after = _report(_result("s@ecnn", 0.15))  # exactly +50%
        assert find_regressions(before, after, 50.0) == []  # > is strict
        assert len(find_regressions(before, after, 49.0)) == 1

    def test_cli_compare_handles_empty_and_disjoint_reports(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        _report().save(empty)
        assert bench_main(["--compare", str(empty), str(empty), "--fail-over", "0"]) == 0
        assert "no scenario regressed" in capsys.readouterr().out
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        _report(_result("a@ecnn", 0.1)).save(old)
        _report(_result("b@ecnn", 9.9)).save(new)
        assert bench_main(["--compare", str(old), str(new), "--fail-over", "0"]) == 0


# ------------------------------------------------------------------- hot path
class TestHotPathMemos:
    def test_memos_are_registered(self):
        names = {memo.name for memo in hotpath.all_memos()}
        assert {"catalogue-networks", "fbisa-compilations", "block-reports"} <= names

    def test_shared_network_is_memoized_and_marked(self):
        hotpath.clear_all()
        entry = workload("denoise")
        first = entry.shared_network()
        second = entry.shared_network()
        assert first is second
        assert first.metadata.get("shared") is True
        stats = hotpath.memo("catalogue-networks").stats
        assert stats.hits >= 1 and stats.misses >= 1

    def test_build_network_stays_fresh_and_unmarked(self):
        entry = workload("denoise")
        built = entry.build_network()
        assert built is not entry.shared_network()
        assert "shared" not in built.metadata

    def test_disabled_baseline_matches_optimized_bit_for_bit(self):
        def figures():
            session = Session(backend="ecnn", cache=ResultCache())
            return tuple(session.profile(name) for name in CATALOGUE)

        hotpath.clear_all()
        optimized = figures()
        with hotpath.disabled():
            baseline = figures()
        assert baseline == optimized

    def test_disabled_restores_state_on_exit(self):
        memo = hotpath.memo("catalogue-networks")
        assert memo.enabled
        with hotpath.disabled("catalogue-networks"):
            assert not memo.enabled
        assert memo.enabled


# ------------------------------------------------------------------------ CLI
class TestCli:
    def test_list(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "hotpath_memoization@ecnn" in out

    def test_run_writes_report(self, tmp_path, capsys):
        output = tmp_path / "BENCH_cli.json"
        assert (
            bench_main(
                ["--repeats", "1", "--scenario", "profile_warm_cache", "--output", str(output)]
            )
            == 0
        )
        report = BenchReport.load(output)
        assert report.results[0].scenario == "profile_warm_cache@ecnn"
        assert "profile_warm_cache@ecnn" in capsys.readouterr().out

    def test_compare_against_previous(self, tmp_path, capsys):
        output = tmp_path / "BENCH_a.json"
        bench_main(["--repeats", "1", "--scenario", "profile_warm_cache", "--output", str(output)])
        capsys.readouterr()
        assert (
            bench_main(
                [
                    "--repeats", "1",
                    "--scenario", "profile_warm_cache",
                    "--output", "-",
                    "--compare", str(output),
                ]
            )
            == 0
        )
        assert "Bench comparison" in capsys.readouterr().out

    def test_bad_filter_errors(self):
        with pytest.raises(SystemExit):
            bench_main(["--scenario", "nope-never"])

    @staticmethod
    def _report_with_time(best_s: float) -> BenchReport:
        result = BenchResult(
            scenario="s@ecnn",
            description="",
            backends=("ecnn",),
            unit="runs",
            repeats=1,
            wall_s=(best_s,),
            units_per_run=1.0,
        )
        return BenchReport(suite="default", results=(result,), repeats=1)

    def test_compare_two_files_without_running(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        self._report_with_time(0.2).save(old)
        self._report_with_time(0.1).save(new)
        assert bench_main(["--compare", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "Bench comparison" in out
        assert "2.00x" in out

    def test_fail_over_flags_regressions(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        self._report_with_time(0.1).save(old)
        self._report_with_time(0.2).save(new)  # 100% slower
        assert bench_main(["--compare", str(old), str(new), "--fail-over", "50"]) == 1
        assert "regressions over the 50% threshold" in capsys.readouterr().out
        # A generous threshold passes.
        assert bench_main(["--compare", str(old), str(new), "--fail-over", "150"]) == 0
        assert "no scenario regressed" in capsys.readouterr().out

    def test_fail_over_needs_compare(self):
        with pytest.raises(SystemExit):
            bench_main(["--fail-over", "10"])
        with pytest.raises(SystemExit):
            bench_main(["--compare", "a.json", "b.json", "c.json"])

    def test_two_file_compare_rejects_run_only_flags(self, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        self._report_with_time(0.2).save(old)
        self._report_with_time(0.1).save(new)
        for extra in (["--scenario", "serving"], ["--repeats", "2"],
                      ["--output", "x.json"], ["--list"]):
            with pytest.raises(SystemExit):
                bench_main(["--compare", str(old), str(new), *extra])
