"""Tests for the analysis utilities plus cross-package integration paths."""

import numpy as np
import pytest

from repro.analysis.report import Table, format_table
from repro.analysis.sweeps import sweep
from repro.analysis.workloads import (
    add_gaussian_noise,
    bicubic_like_downsample,
    synthetic_image,
)
from repro.core import BlockInferencePipeline
from repro.core.blockflow import frame_based_inference
from repro.fbisa import assemble, compile_network, disassemble, encode_program
from repro.fbisa.encoding import decode_program
from repro.hw import EcnnProcessor, evaluate_performance
from repro.models import build_dnernet, build_sr2ernet
from repro.quant import quantize_network
from repro.quant.quantize import apply_plan
from repro.specs import SPECIFICATIONS


class TestWorkloads:
    def test_synthetic_image_deterministic_and_bounded(self):
        a = synthetic_image(32, 40, seed=3)
        b = synthetic_image(32, 40, seed=3)
        c = synthetic_image(32, 40, seed=4)
        assert np.array_equal(a.data, b.data)
        assert not np.array_equal(a.data, c.data)
        assert a.shape == (3, 32, 40)
        assert a.data.min() >= 0.0 and a.data.max() <= 1.0

    def test_synthetic_image_minimum_size(self):
        with pytest.raises(ValueError):
            synthetic_image(2, 2)

    def test_gaussian_noise_changes_values_but_stays_in_range(self):
        image = synthetic_image(16, 16, seed=1)
        noisy = add_gaussian_noise(image, 0.1, seed=2)
        assert noisy.shape == image.shape
        assert not np.array_equal(noisy.data, image.data)
        assert noisy.data.min() >= 0.0 and noisy.data.max() <= 1.0
        assert np.array_equal(add_gaussian_noise(image, 0.0).data, image.data)
        with pytest.raises(ValueError):
            add_gaussian_noise(image, -0.1)

    def test_downsample_shapes_and_mean_preservation(self):
        image = synthetic_image(32, 32, seed=5)
        small = bicubic_like_downsample(image, 4)
        assert small.shape == (3, 8, 8)
        assert small.data.mean() == pytest.approx(image.data.mean(), abs=1e-9)
        assert bicubic_like_downsample(image, 1) is image
        with pytest.raises(ValueError):
            bicubic_like_downsample(image, 3)


class TestReporting:
    def test_format_table_aligns_columns(self):
        text = format_table("demo", ["a", "longer"], [(1, 2.5), ("xx", 3)])
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[2] and "longer" in lines[2]
        assert len(lines) == 6

    def test_table_object_validates_row_width(self):
        table = Table("t", ["x", "y"])
        table.add_row(1, 2)
        assert "1" in table.render()
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_sweep_returns_pairs(self):
        assert sweep([1, 2, 3], lambda x: x * x) == [(1, 1), (2, 4), (3, 9)]


class TestEndToEnd:
    def test_quantized_compiled_processor_pipeline(self):
        """Quantize -> compile -> execute on the processor == quantized network."""
        network = build_dnernet(2, 1, 0, seed=17)
        image = synthetic_image(40, 32, seed=9)
        plan = quantize_network(network, calibration_inputs=[image])
        apply_plan(network, plan)
        compiled = compile_network(network, input_block=64, plan=plan)
        processor = EcnnProcessor()
        processor.load(compiled)
        report = processor.run_image(image, network, output_block=16)
        reference = frame_based_inference(network, image)
        assert np.allclose(report.output.data, reference.data)

    def test_binary_program_round_trip_preserves_timing(self):
        compiled = compile_network(build_dnernet(3, 1, 0), input_block=64)
        blob = encode_program(compiled.program)
        decoded = decode_program(blob, name="roundtrip")
        assert len(decoded) == len(compiled.program)
        for original, restored in zip(compiled.program, decoded):
            assert original.opcode == restored.opcode
            assert original.num_tiles == restored.num_tiles
            assert original.leaf_modules == restored.leaf_modules

    def test_assembly_round_trip_of_compiled_program(self):
        compiled = compile_network(build_sr2ernet(2, 1, 0), input_block=64)
        text = disassemble(compiled.program)
        parsed = assemble(text)
        assert len(parsed) == len(compiled.program)
        parsed.validate()

    def test_pipeline_and_performance_agree_on_block_geometry(self):
        network = build_dnernet(3, 1, 0)
        pipeline = BlockInferencePipeline(network, input_block=128)
        perf = evaluate_performance(network, SPECIFICATIONS["HD30"], input_block=128)
        assert pipeline.output_block == perf.output_block
        assert "BlockInferencePipeline" in pipeline.describe()

    def test_pipeline_argument_validation(self):
        network = build_dnernet(2, 1, 0)
        with pytest.raises(ValueError):
            BlockInferencePipeline(network)
        with pytest.raises(ValueError):
            BlockInferencePipeline(network, input_block=64, output_block=32)
