"""Property tests for delta-aware video-stream serving.

The geometry used throughout is chosen so change locality is *provable*:
denoise (margin 6 — three 3x3 convolutions per side) over 48x48 frames at
``output_block=16`` gives a 3x3 grid whose block centers (rows/cols 8, 24,
40) sit more than a margin away from every other block's input window.  A
single-pixel mutation at a block center therefore changes exactly one
block's input window, and :class:`repro.runtime.video.VideoStream` must
recompute exactly that block — no more, no fewer.

The bit-identity reference for this custom geometry is
``block_based_inference(network, frame, 16, parallel=False)`` (the parity
contract is per-geometry; see the module docstring of
:mod:`repro.runtime.video`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.workloads import synthetic_image
from repro.api import Session
from repro.core.blockflow import block_based_inference, partition_image
from repro.nn.tensor import FeatureMap
from repro.runtime import RESIDUAL_HISTOGRAM_EDGES, ResultCache, VideoStream

#: 48x48 denoise frames at output_block 16: a 3x3 grid, margin 6.
SIZE = 48
BLOCK = 16
GRID_BLOCKS = 9
#: Center pixel of grid block (row, col) — strictly interior to that
#: block's input window and outside every other block's window.
_CENTERS = {(row, col): (16 * row + 8, 16 * col + 8) for row in range(3) for col in range(3)}


@pytest.fixture
def session() -> Session:
    return Session(backend="ecnn", cache=ResultCache())


@pytest.fixture
def stream(session) -> VideoStream:
    return session.video_stream("cam0", "denoise", output_block=BLOCK)


def _frame(seed: int) -> FeatureMap:
    return synthetic_image(SIZE, SIZE, seed=seed)


def _mutated(frame: FeatureMap, blocks) -> FeatureMap:
    data = frame.data.copy()
    for row, col in blocks:
        y, x = _CENTERS[(row, col)]
        data[:, y, x] += 1.0
    return FeatureMap(data=data, qformat=frame.qformat)


def _reference(session: Session, frame: FeatureMap) -> np.ndarray:
    network = session.compile("denoise").network
    output, _ = block_based_inference(network, frame, output_block=BLOCK, parallel=False)
    return output.data


class TestChangeLocality:
    def test_first_frame_recomputes_everything_without_residuals(self, stream):
        result = stream.submit(_frame(0))
        assert result.residuals is None
        assert result.blocks_reused == 0
        assert result.blocks_recomputed == GRID_BLOCKS
        assert result.recomputed_blocks == tuple(range(GRID_BLOCKS))

    @pytest.mark.parametrize(
        "mutated_blocks",
        [
            [(1, 1)],
            [(0, 0), (2, 2)],
            [(0, 2), (1, 1), (2, 0)],
            [(0, 1), (1, 0), (1, 2), (2, 1)],
        ],
        ids=["center", "two-corners", "diagonal", "plus"],
    )
    def test_mutating_k_blocks_recomputes_exactly_k(
        self, session, stream, mutated_blocks
    ):
        base = _frame(0)
        stream.submit(base)
        frame = _mutated(base, mutated_blocks)
        result = stream.submit(frame)
        expected = tuple(sorted(3 * row + col for row, col in mutated_blocks))
        assert result.recomputed_blocks == expected
        assert result.blocks_recomputed == len(mutated_blocks)
        assert result.blocks_reused == GRID_BLOCKS - len(mutated_blocks)
        # Reuse never costs pixels: the stitched frame is bit-identical to
        # full re-inference at the stream's geometry.
        assert np.array_equal(result.output.data, _reference(session, frame))

    def test_static_sequence_reuses_every_block(self, session, stream):
        base = _frame(1)
        stream.submit(base)
        for _ in range(3):
            result = stream.submit(base)
            assert result.blocks_reused == GRID_BLOCKS
            assert result.recomputed_blocks == ()
            assert result.residuals == (0.0,) * GRID_BLOCKS
            assert np.array_equal(result.output.data, _reference(session, base))

    def test_scene_cut_invalidates_every_block(self, session, stream):
        stream.submit(_frame(2))
        cut = _frame(99)
        result = stream.submit(cut)
        assert result.blocks_reused == 0
        assert result.blocks_recomputed == GRID_BLOCKS
        assert result.residuals is not None and min(result.residuals) > 0.0
        assert np.array_equal(result.output.data, _reference(session, cut))

    def test_invalidate_forces_full_undiffed_recompute(self, stream):
        base = _frame(3)
        stream.submit(base)
        assert stream.submit(base).blocks_reused == GRID_BLOCKS
        dropped = stream.invalidate()
        assert dropped == GRID_BLOCKS
        result = stream.submit(base)
        assert result.residuals is None
        assert result.blocks_recomputed == GRID_BLOCKS

    def test_resolution_change_recomputes_without_diffing(self, stream):
        stream.submit(_frame(4))
        wide = synthetic_image(SIZE, SIZE + 16, seed=4)
        result = stream.submit(wide)
        assert result.residuals is None
        assert result.blocks_reused == 0


class TestCacheBound:
    def test_eviction_honors_the_residency_bound(self, session):
        bound = 4
        stream = session.video_stream(
            "small-cache", "denoise", max_cached_blocks=bound, output_block=BLOCK
        )
        base = _frame(5)
        for _ in range(4):
            stream.submit(base)
            stats = stream.stats
            assert stats.cache_entries <= bound
        # 9 blocks through a 4-entry cache: the first frame alone evicts 5.
        assert stream.stats.cache_evictions >= GRID_BLOCKS - bound
        # Static frames still recompute the evicted blocks (residual 0 but
        # not resident) — and eviction never affects pixels.
        result = stream.submit(base)
        assert result.blocks_recomputed > 0
        assert result.blocks_reused == bound
        assert np.array_equal(result.output.data, _reference(session, base))

    def test_unbounded_cache_never_evicts(self, session):
        # Through the session API ``None`` means "the default bound";
        # a truly unbounded cache takes the constructor.
        stream = VideoStream(
            session,
            stream_id="unbounded",
            workload_name="denoise",
            max_cached_blocks=None,
            output_block=BLOCK,
        )
        assert stream.max_cached_blocks is None
        base = _frame(6)
        for _ in range(3):
            stream.submit(base)
        assert stream.stats.cache_evictions == 0
        assert stream.stats.cache_entries == GRID_BLOCKS

    def test_bad_configuration_is_rejected(self, session):
        with pytest.raises(ValueError, match="recognition"):
            session.video_stream("cam", "recognition")
        with pytest.raises(ValueError, match="metric"):
            session.video_stream("cam", "denoise", metric="ssim")
        with pytest.raises(ValueError, match="threshold"):
            session.video_stream("cam", "denoise", threshold=-0.1)
        with pytest.raises(ValueError, match="max_cached_blocks"):
            VideoStream(
                session, stream_id="cam", workload_name="denoise", max_cached_blocks=0
            )


class TestStatsReconciliation:
    def test_counters_reconcile_with_per_frame_results(self, session, stream):
        base = _frame(7)
        frames = [
            base,
            base,  # static: all reuse
            _mutated(base, [(1, 1)]),  # one block
            _mutated(base, [(1, 1)]),  # static again relative to prev
            _frame(123),  # scene cut
        ]
        results = [stream.submit(frame) for frame in frames]
        stats = stream.stats
        assert stats.frames == len(frames)
        assert stats.blocks_reused == sum(r.blocks_reused for r in results)
        assert stats.blocks_recomputed == sum(r.blocks_recomputed for r in results)
        assert stats.blocks_total == stats.blocks_reused + stats.blocks_recomputed
        assert stats.blocks_total == sum(r.blocks_total for r in results)
        # The histogram covers exactly the diffed blocks: every frame after
        # the first contributes one residual per grid block.
        diffed = sum(GRID_BLOCKS for r in results if r.residuals is not None)
        assert sum(stats.residual_histogram) == diffed
        assert len(stats.residual_histogram) == len(RESIDUAL_HISTOGRAM_EDGES) + 1
        # Exact-reuse mode never accepts a nonzero residual.
        assert stats.threshold == 0.0
        assert stats.max_reused_residual == 0.0
        assert stats.bytes_saved > 0
        assert 0.0 < stats.reuse_rate < 1.0
        assert stream.stream_id in stats.describe()

    def test_session_surfaces_stream_stats(self, session):
        session.execute_stream("a", "denoise", _frame(8), output_block=BLOCK)
        session.execute_stream("b", "denoise", _frame(9), output_block=BLOCK)
        stats = session.video_stream_stats
        assert [s.stream_id for s in stats] == ["a", "b"]
        assert all(s.frames == 1 for s in stats)

    def test_thresholded_reuse_reports_measured_residuals(self, session):
        stream = session.video_stream(
            "lossy", "denoise", threshold=1e-3, output_block=BLOCK
        )
        base = _frame(10)
        stream.submit(base)
        noisy = FeatureMap(
            data=base.data + np.random.default_rng(11).normal(scale=1e-5, size=base.data.shape),
            qformat=base.qformat,
        )
        result = stream.submit(noisy)
        # Low-amplitude noise stays under the MAE threshold: all reuse.
        assert result.blocks_reused == GRID_BLOCKS
        stats = stream.stats
        assert 0.0 < stats.max_reused_residual <= 1e-3
        # The served pixels equal the *predecessor's* reference exactly, so
        # the pixel error against fresh re-inference is bounded by the
        # drift between the two references.
        ref_prev = _reference(session, base)
        ref_cur = _reference(session, noisy)
        assert np.array_equal(result.output.data, ref_prev)
        error = np.abs(result.output.data - ref_cur).max()
        assert error <= np.abs(ref_cur - ref_prev).max()

    def test_reconfigure_tightens_future_frames_only(self, session):
        stream = session.video_stream(
            "tighten", "denoise", threshold=1.0, output_block=BLOCK
        )
        base = _frame(12)
        stream.submit(base)
        drifted = _mutated(base, [(1, 1)])
        assert stream.submit(drifted).blocks_reused == GRID_BLOCKS
        session.video_stream("tighten", "denoise", threshold=0.0)
        assert stream.threshold == 0.0
        # At threshold 0 the drifted block now recomputes (its residual
        # against the previous frame is 0 only for untouched blocks).
        result = stream.submit(_mutated(drifted, [(1, 1)]))
        assert result.recomputed_blocks == (4,)


class TestGridAssumptions:
    def test_geometry_is_the_documented_3x3_grid(self, session):
        network = session.compile("denoise").network
        grid = partition_image(SIZE, SIZE, network, BLOCK)
        assert grid.num_blocks == GRID_BLOCKS
        assert (grid.output_height, grid.output_width) == (SIZE, SIZE)
        # The center-pixel construction: each block's input window contains
        # its own center and no other block's center.
        for index, block in enumerate(grid.blocks):
            for (row, col), (y, x) in _CENTERS.items():
                inside = (
                    block.in_row <= y < block.in_row + block.in_height
                    and block.in_col <= x < block.in_col + block.in_width
                )
                assert inside == (index == 3 * row + col)
