"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.workloads import synthetic_image
from repro.models.baselines import build_plain_network
from repro.models.ernet import build_dnernet, build_sr2ernet
from repro.nn.layers import Conv2d, ReLU, Residual
from repro.nn.network import Network, Sequential
from repro.nn.ops import PixelShuffle
from repro.nn.tensor import FeatureMap


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_image() -> FeatureMap:
    """A small deterministic natural-image-like test image."""
    return synthetic_image(48, 40, seed=7)


@pytest.fixture
def tiny_plain_network() -> Network:
    """A small plain 3x3 network (depth 4, width 8) for fast functional tests."""
    return build_plain_network(4, 8, seed=3)


@pytest.fixture
def tiny_ernet() -> Network:
    """A tiny denoising ERNet (B=2, R=2) for fast end-to-end tests."""
    return build_dnernet(2, 2, 0, seed=5)


@pytest.fixture
def tiny_sr_network() -> Network:
    """A tiny x2 SR network with one upsampler for geometry tests."""
    return build_sr2ernet(2, 1, 0, seed=9)


@pytest.fixture
def mixed_network() -> Sequential:
    """A hand-built network mixing conv, residual and pixel shuffle layers."""
    layers = [
        Conv2d(3, 8, 3, seed=1, name="head"),
        Residual(
            [Conv2d(8, 16, 3, seed=2), ReLU(), Conv2d(16, 8, 1, seed=3)],
            name="res0",
        ),
        Conv2d(8, 12, 3, seed=4, name="pre_shuffle"),
        PixelShuffle(2),
        Conv2d(3, 3, 3, seed=5, name="out"),
    ]
    return Sequential(layers, name="mixed")
