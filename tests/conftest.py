"""Shared fixtures and the differential-parity helper for the test suite."""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np
import pytest

from repro.analysis.workloads import synthetic_image
from repro.models.baselines import build_plain_network
from repro.models.ernet import build_dnernet, build_sr2ernet
from repro.nn.layers import AddBias, ClippedReLU, Conv2d, ReLU, Residual
from repro.nn.network import Network, Sequential
from repro.nn.ops import PixelShuffle, ZeroPad
from repro.nn.tensor import FeatureMap


def _parity_pixels(value: Any) -> np.ndarray:
    """Extract the raw pixel array from any execution-path output shape."""
    if isinstance(value, np.ndarray):
        return value
    # InferenceResult (engine/session/cluster paths) carries .output.
    output = getattr(value, "output", value)
    # FeatureMap / BatchedFeatureMap carry .data.
    data = getattr(output, "data", output)
    if not isinstance(data, np.ndarray):
        raise TypeError(f"cannot extract pixels from {type(value).__name__}")
    return data


def assert_parity(outputs: Mapping[str, Any], *, context: str = "") -> None:
    """Assert every named output is bit-identical to the first one.

    This is the repository's A/B verification discipline as a reusable
    check: every optimized execution path (fused batch kernels,
    block-parallel grouping, cross-frame batching, sharded cluster
    serving) must produce pixels *bit-identical* — not merely close — to
    the scalar reference it replaced.  ``outputs`` maps a path name to its
    output (a raw array, a ``FeatureMap``/``BatchedFeatureMap`` or an
    ``InferenceResult``); the first entry is the reference.
    """
    if len(outputs) < 2:
        raise ValueError("parity needs at least a reference and one candidate")
    items = list(outputs.items())
    reference_name, reference_value = items[0]
    reference = _parity_pixels(reference_value)
    suffix = f" [{context}]" if context else ""
    for name, value in items[1:]:
        candidate = _parity_pixels(value)
        assert candidate.shape == reference.shape, (
            f"{name!r} output shape {candidate.shape} differs from "
            f"{reference_name!r} shape {reference.shape}{suffix}"
        )
        assert np.array_equal(candidate, reference), (
            f"{name!r} output is not bit-identical to {reference_name!r}: "
            f"max abs difference "
            f"{np.max(np.abs(candidate - reference)):.3e}{suffix}"
        )


def draw_layer_stack(rng: np.random.Generator, channels: int) -> Sequential:
    """A random little network whose layer mix exercises the fused kernels.

    Shared by the parity suite and the static-analysis fuzz harness: any
    stack this draws must both execute on every backend and pass
    ``verify_network`` at a compatible block size.
    """
    layers = []
    width = channels
    for position in range(rng.integers(2, 5)):
        kind = rng.choice(["conv", "relu", "clipped", "bias", "residual", "pad"])
        if kind == "conv":
            out = int(rng.integers(2, 9))
            kernel = int(rng.choice([1, 3]))
            padding = str(rng.choice(["valid", "zero"]))
            layers.append(
                Conv2d(width, out, kernel, padding=padding, seed=int(rng.integers(1e6)))
            )
            width = out
        elif kind == "relu":
            layers.append(ReLU())
        elif kind == "clipped":
            layers.append(ClippedReLU(float(rng.uniform(0.3, 2.0))))
        elif kind == "bias":
            layers.append(AddBias(rng.normal(size=width)))
        elif kind == "pad":
            layers.append(ZeroPad(int(rng.integers(1, 3))))
        else:
            layers.append(
                Residual(
                    [
                        Conv2d(width, width, 3, padding="zero", seed=int(rng.integers(1e6))),
                        ReLU(),
                    ]
                )
            )
    return Sequential(layers, name=f"random-{channels}")


@pytest.fixture(name="assert_parity")
def assert_parity_fixture():
    """The :func:`assert_parity` helper as a fixture (same callable)."""
    return assert_parity


@pytest.fixture(name="draw_layer_stack")
def draw_layer_stack_fixture():
    """The :func:`draw_layer_stack` generator as a fixture (same callable)."""
    return draw_layer_stack


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_image() -> FeatureMap:
    """A small deterministic natural-image-like test image."""
    return synthetic_image(48, 40, seed=7)


@pytest.fixture
def tiny_plain_network() -> Network:
    """A small plain 3x3 network (depth 4, width 8) for fast functional tests."""
    return build_plain_network(4, 8, seed=3)


@pytest.fixture
def tiny_ernet() -> Network:
    """A tiny denoising ERNet (B=2, R=2) for fast end-to-end tests."""
    return build_dnernet(2, 2, 0, seed=5)


@pytest.fixture
def tiny_sr_network() -> Network:
    """A tiny x2 SR network with one upsampler for geometry tests."""
    return build_sr2ernet(2, 1, 0, seed=9)


@pytest.fixture
def mixed_network() -> Sequential:
    """A hand-built network mixing conv, residual and pixel shuffle layers."""
    layers = [
        Conv2d(3, 8, 3, seed=1, name="head"),
        Residual(
            [Conv2d(8, 16, 3, seed=2), ReLU(), Conv2d(16, 8, 1, seed=3)],
            name="res0",
        ),
        Conv2d(8, 12, 3, seed=4, name="pre_shuffle"),
        PixelShuffle(2),
        Conv2d(3, 3, 3, seed=5, name="out"),
    ]
    return Sequential(layers, name="mixed")
