"""Randomized differential parity: every execution tier, bit-identical.

The repository's optimization discipline is that a faster path is only
accepted with bit-identical A/B verification against the path it replaced.
This harness generalizes those hand-picked A/B checks into a seeded
randomized sweep: each seed draws shapes, channel counts, network
geometries and Q-formats, then drives the same pixels through every tier —
scalar layer kernels vs fused ``forward_batch``, scalar block flow vs
block-parallel grouping, quantized deployments, and the session / engine /
sharded-cluster serving stack — asserting exact equality with the shared
:func:`conftest.assert_parity` helper.

Randomization is *seeded*: a failure reproduces from its seed, and the
drawn configurations are stable across runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.workloads import synthetic_image
from repro.api import Session
from repro.core.blockflow import block_based_inference, frame_based_inference
from repro.core.pipeline import BlockInferencePipeline
from repro.models.baselines import build_plain_network
from repro.nn.ops import MaxPool2x2, PixelShuffle, PixelUnshuffle
from repro.nn.tensor import BatchedFeatureMap, FeatureMap
from repro.quant.quantize import quantize_network
from repro.runtime import ResultCache, ServingCluster, ServingEngine

SEEDS = (0, 1, 2, 3, 4)

#: Block-flow workloads of the serving catalogue (recognition serves single
#: zero-padded blocks, not pixels), with the (low, high) frame-size range to
#: draw from — style transfer's two downsamplers need a larger minimum.
PIXEL_WORKLOADS = {
    "denoise": (24, 49),
    "super_resolution": (24, 49),
    "style_transfer": (52, 73),
}


# ------------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def engine() -> ServingEngine:
    return ServingEngine(backend="ecnn", cache=ResultCache())


@pytest.fixture(scope="module")
def cluster():
    with ServingCluster(workers=3, backend="ecnn", mode="inline") as built:
        yield built


# ----------------------------------------------------------------- the helper
class TestAssertParityHelper:
    def test_detects_divergence(self, assert_parity):
        reference = np.arange(12.0).reshape(3, 2, 2)
        perturbed = reference.copy()
        perturbed[1, 0, 1] += 1e-12
        with pytest.raises(AssertionError, match="bit-identical"):
            assert_parity({"reference": reference, "broken": perturbed})

    def test_detects_shape_mismatch(self, assert_parity):
        with pytest.raises(AssertionError, match="shape"):
            assert_parity({"a": np.zeros((2, 2)), "b": np.zeros((2, 3))})

    def test_needs_two_outputs(self, assert_parity):
        with pytest.raises(ValueError):
            assert_parity({"only": np.zeros(3)})

    def test_unwraps_feature_maps_and_results(self, engine, assert_parity):
        image = synthetic_image(24, 24, seed=0)
        result = engine.execute_frame("denoise", image, cached=False)
        assert_parity(
            {
                "raw": result.output.data,
                "feature_map": result.output,
                "inference_result": result,
            }
        )

    def test_fixture_is_the_conftest_export(self, assert_parity):
        # The fixture hands out the module-level helper defined in
        # tests/conftest.py (loaded by path: "conftest" is an ambiguous
        # module name when the benchmarks suite is collected too).
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "tests_conftest_for_parity", Path(__file__).parent / "conftest.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert assert_parity.__code__.co_filename == module.assert_parity.__code__.co_filename
        assert assert_parity.__name__ == "assert_parity"


# ------------------------------------------------------------- random drawing
# The random stack generator lives in tests/conftest.py (draw_layer_stack)
# so the static-analysis fuzz harness can reuse it; tests take it as a
# fixture rather than importing conftest (an ambiguous module name when
# the benchmarks suite is collected too).
@pytest.mark.parametrize("seed", SEEDS)
class TestRandomizedKernels:
    def test_random_stack_forward_batch_matches_scalar(
        self, seed, assert_parity, draw_layer_stack
    ):
        rng = np.random.default_rng(seed)
        channels = int(rng.integers(2, 7))
        height = int(rng.integers(8, 20))
        width = int(rng.integers(8, 20))
        batch = int(rng.integers(2, 6))
        network = draw_layer_stack(rng, channels)
        maps = [
            FeatureMap(data=rng.normal(size=(channels, height, width)))
            for _ in range(batch)
        ]
        fused = network.forward_batch(BatchedFeatureMap.from_maps(maps))
        for index, single in enumerate(maps):
            assert_parity(
                {
                    "scalar": network.forward(single),
                    "forward_batch": fused[index],
                },
                context=f"seed={seed} frame={index} shape={single.data.shape}",
            )

    def test_random_shuffle_pool_kernels(self, seed, assert_parity):
        rng = np.random.default_rng(1000 + seed)
        factor = int(rng.choice([2, 3]))
        height = factor * int(rng.integers(3, 7))
        width = factor * int(rng.integers(3, 7))
        even_height = 2 * int(rng.integers(3, 9))
        even_width = 2 * int(rng.integers(3, 9))
        for layer, channels, size in (
            (PixelShuffle(factor), factor * factor * int(rng.integers(1, 4)), (height, width)),
            (PixelUnshuffle(factor), int(rng.integers(1, 5)), (height, width)),
            (MaxPool2x2(), int(rng.integers(1, 6)), (even_height, even_width)),
        ):
            maps = [
                FeatureMap(data=rng.normal(size=(channels, *size)))
                for _ in range(3)
            ]
            fused = layer.forward_batch(BatchedFeatureMap.from_maps(maps))
            for index, single in enumerate(maps):
                assert_parity(
                    {"scalar": layer.forward(single), "batched": fused[index]},
                    context=f"seed={seed} {type(layer).__name__}",
                )


@pytest.mark.parametrize("seed", SEEDS)
class TestRandomizedBlockFlow:
    def test_random_geometry_scalar_vs_parallel(self, seed, assert_parity):
        rng = np.random.default_rng(2000 + seed)
        depth = int(rng.integers(2, 5))
        width = int(rng.integers(4, 11))
        network = build_plain_network(depth, width, seed=seed)
        height = int(rng.integers(24, 44))
        image_width = int(rng.integers(24, 44))
        output_block = int(rng.integers(8, 15))
        image = synthetic_image(height, image_width, seed=seed)
        scalar, scalar_grid = block_based_inference(
            network, image, output_block=output_block, parallel=False
        )
        fused, fused_grid = block_based_inference(
            network, image, output_block=output_block, parallel=True
        )
        assert fused_grid.num_blocks == scalar_grid.num_blocks
        assert_parity(
            {"scalar": scalar, "block_parallel": fused},
            context=f"seed={seed} {height}x{image_width} block={output_block}",
        )
        # The block flow itself must agree with whole-frame execution (to
        # float tolerance: the summation order differs by construction).
        reference = frame_based_inference(network, image)
        assert np.allclose(fused.data, reference.data)

    def test_random_qformat_quantized_parity(self, seed, assert_parity):
        rng = np.random.default_rng(3000 + seed)
        network = build_plain_network(int(rng.integers(2, 4)), int(rng.integers(4, 9)), seed=seed)
        bits = int(rng.choice([6, 7, 8]))
        feature_bits = int(rng.choice([7, 8]))
        plan = quantize_network(network, bits=bits, feature_bits=feature_bits)
        # The drawn Q-formats really vary with the seed (regression guard
        # for the randomization itself).
        assert plan.layers[0].weight_format.bits == bits
        pipeline = BlockInferencePipeline(
            network, output_block=int(rng.integers(8, 13)), quantization=plan
        )
        image = synthetic_image(int(rng.integers(24, 40)), int(rng.integers(24, 40)), seed=seed)
        assert_parity(
            {
                "scalar": pipeline.run(image, parallel=False),
                "block_parallel": pipeline.run(image, parallel=True),
            },
            context=f"seed={seed} Q bits={bits}/{feature_bits}",
        )


@pytest.mark.parametrize("seed", SEEDS)
class TestPostChaosParity:
    """After every injected worker death, survivors stay bit-identical.

    The soak harness's chaos discipline, pinned as a seeded sweep: draw a
    pixel workload, serve it through a fresh inline cluster, kill the
    owning shard (twice — down to the last survivor), and hold every
    surviving shard's ``execute_frame`` output to ``assert_parity``
    against the scalar single-process reference.
    """

    def test_survivors_bit_identical_after_each_worker_death(self, seed, assert_parity):
        rng = np.random.default_rng(5000 + seed)
        workload = str(rng.choice(sorted(PIXEL_WORKLOADS)))
        low, high = PIXEL_WORKLOADS[workload]
        # Snap to multiples of 4: style transfer's two downsamplers only
        # accept frame sizes congruent to 0 or 1 mod 4.
        height = int(rng.integers(low, high)) // 4 * 4
        width = int(rng.integers(low, high)) // 4 * 4
        image = synthetic_image(height, width, seed=seed)
        session = Session(backend="ecnn", cache=ResultCache())
        reference = session.execute(workload, image, parallel=False, cached=False)
        with ServingCluster(workers=3, backend="ecnn", mode="inline") as chaos_cluster:
            outputs = {"scalar_reference": reference}
            outputs["before_chaos"] = chaos_cluster.execute_frame(
                workload, image, cached=False
            )
            for death in (1, 2):
                owner = chaos_cluster._workload_shard[workload]
                chaos_cluster.kill_worker(owner)
                outputs[f"after_death_{death}"] = chaos_cluster.execute_frame(
                    workload, image, cached=False
                )
            assert len(chaos_cluster.live_shard_indices()) == 1
            assert_parity(
                outputs, context=f"seed={seed} workload={workload} post-chaos"
            )


@pytest.mark.parametrize("seed", SEEDS)
class TestRandomizedServingStack:
    def test_session_engine_cluster_bit_identical(self, seed, engine, cluster, assert_parity):
        rng = np.random.default_rng(4000 + seed)
        workload = str(rng.choice(sorted(PIXEL_WORKLOADS)))
        low, high = PIXEL_WORKLOADS[workload]
        height = int(rng.integers(low, high))
        width = int(rng.integers(low, high))
        image = synthetic_image(height, width, seed=seed)
        session = Session(backend="ecnn", cache=ResultCache())
        assert_parity(
            {
                "session_scalar": session.execute(
                    workload, image, parallel=False, cached=False
                ),
                "session_parallel": session.execute(
                    workload, image, parallel=True, cached=False
                ),
                "engine": engine.execute_frame(workload, image, cached=False),
                "cluster": cluster.execute_frame(workload, image, cached=False),
                "cluster_batch": cluster.execute_frames(
                    workload, [image], cached=False
                )[0],
            },
            context=f"seed={seed} workload={workload} {height}x{width}",
        )
