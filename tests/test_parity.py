"""Randomized differential parity: every execution tier, bit-identical.

The repository's optimization discipline is that a faster path is only
accepted with bit-identical A/B verification against the path it replaced.
This harness generalizes those hand-picked A/B checks into a seeded
randomized sweep: each seed draws shapes, channel counts, network
geometries and Q-formats, then drives the same pixels through every tier —
scalar layer kernels vs fused ``forward_batch``, scalar block flow vs
block-parallel grouping, quantized deployments, and the session / engine /
sharded-cluster serving stack — asserting exact equality with the shared
:func:`conftest.assert_parity` helper.

Randomization is *seeded*: a failure reproduces from its seed, and the
drawn configurations are stable across runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.workloads import synthetic_image
from repro.api import Session
from repro.core.blockflow import block_based_inference, frame_based_inference
from repro.core.pipeline import BlockInferencePipeline
from repro.kernels import (
    active_kernel_set,
    available_kernel_sets,
    kernel_set,
    use_kernel_set,
)
from repro.models.baselines import build_plain_network
from repro.nn.ops import MaxPool2x2, PixelShuffle, PixelUnshuffle
from repro.nn.tensor import BatchedFeatureMap, FeatureMap
from repro.quant.quantize import optimal_fraction_bits, quantize_network
from repro.runtime import ResultCache, ServingCluster, ServingEngine

SEEDS = (0, 1, 2, 3, 4)

#: Block-flow workloads of the serving catalogue (recognition serves single
#: zero-padded blocks, not pixels), with the (low, high) frame-size range to
#: draw from — style transfer's two downsamplers need a larger minimum.
PIXEL_WORKLOADS = {
    "denoise": (24, 49),
    "super_resolution": (24, 49),
    "style_transfer": (52, 73),
}


# ------------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def engine() -> ServingEngine:
    return ServingEngine(backend="ecnn", cache=ResultCache())


@pytest.fixture(scope="module")
def cluster():
    with ServingCluster(workers=3, backend="ecnn", mode="inline") as built:
        yield built


# ----------------------------------------------------------------- the helper
class TestAssertParityHelper:
    def test_detects_divergence(self, assert_parity):
        reference = np.arange(12.0).reshape(3, 2, 2)
        perturbed = reference.copy()
        perturbed[1, 0, 1] += 1e-12
        with pytest.raises(AssertionError, match="bit-identical"):
            assert_parity({"reference": reference, "broken": perturbed})

    def test_detects_shape_mismatch(self, assert_parity):
        with pytest.raises(AssertionError, match="shape"):
            assert_parity({"a": np.zeros((2, 2)), "b": np.zeros((2, 3))})

    def test_needs_two_outputs(self, assert_parity):
        with pytest.raises(ValueError):
            assert_parity({"only": np.zeros(3)})

    def test_unwraps_feature_maps_and_results(self, engine, assert_parity):
        image = synthetic_image(24, 24, seed=0)
        result = engine.execute_frame("denoise", image, cached=False)
        assert_parity(
            {
                "raw": result.output.data,
                "feature_map": result.output,
                "inference_result": result,
            }
        )

    def test_fixture_is_the_conftest_export(self, assert_parity):
        # The fixture hands out the module-level helper defined in
        # tests/conftest.py (loaded by path: "conftest" is an ambiguous
        # module name when the benchmarks suite is collected too).
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "tests_conftest_for_parity", Path(__file__).parent / "conftest.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert assert_parity.__code__.co_filename == module.assert_parity.__code__.co_filename
        assert assert_parity.__name__ == "assert_parity"


# ------------------------------------------------------------- random drawing
# The random stack generator lives in tests/conftest.py (draw_layer_stack)
# so the static-analysis fuzz harness can reuse it; tests take it as a
# fixture rather than importing conftest (an ambiguous module name when
# the benchmarks suite is collected too).
@pytest.mark.parametrize("seed", SEEDS)
class TestRandomizedKernels:
    def test_random_stack_forward_batch_matches_scalar(
        self, seed, assert_parity, draw_layer_stack
    ):
        rng = np.random.default_rng(seed)
        channels = int(rng.integers(2, 7))
        height = int(rng.integers(8, 20))
        width = int(rng.integers(8, 20))
        batch = int(rng.integers(2, 6))
        network = draw_layer_stack(rng, channels)
        maps = [
            FeatureMap(data=rng.normal(size=(channels, height, width)))
            for _ in range(batch)
        ]
        fused = network.forward_batch(BatchedFeatureMap.from_maps(maps))
        for index, single in enumerate(maps):
            assert_parity(
                {
                    "scalar": network.forward(single),
                    "forward_batch": fused[index],
                },
                context=f"seed={seed} frame={index} shape={single.data.shape}",
            )

    def test_random_shuffle_pool_kernels(self, seed, assert_parity):
        rng = np.random.default_rng(1000 + seed)
        factor = int(rng.choice([2, 3]))
        height = factor * int(rng.integers(3, 7))
        width = factor * int(rng.integers(3, 7))
        even_height = 2 * int(rng.integers(3, 9))
        even_width = 2 * int(rng.integers(3, 9))
        for layer, channels, size in (
            (PixelShuffle(factor), factor * factor * int(rng.integers(1, 4)), (height, width)),
            (PixelUnshuffle(factor), int(rng.integers(1, 5)), (height, width)),
            (MaxPool2x2(), int(rng.integers(1, 6)), (even_height, even_width)),
        ):
            maps = [
                FeatureMap(data=rng.normal(size=(channels, *size)))
                for _ in range(3)
            ]
            fused = layer.forward_batch(BatchedFeatureMap.from_maps(maps))
            for index, single in enumerate(maps):
                assert_parity(
                    {"scalar": layer.forward(single), "batched": fused[index]},
                    context=f"seed={seed} {type(layer).__name__}",
                )


@pytest.mark.parametrize("seed", SEEDS)
class TestRandomizedBlockFlow:
    def test_random_geometry_scalar_vs_parallel(self, seed, assert_parity):
        rng = np.random.default_rng(2000 + seed)
        depth = int(rng.integers(2, 5))
        width = int(rng.integers(4, 11))
        network = build_plain_network(depth, width, seed=seed)
        height = int(rng.integers(24, 44))
        image_width = int(rng.integers(24, 44))
        output_block = int(rng.integers(8, 15))
        image = synthetic_image(height, image_width, seed=seed)
        scalar, scalar_grid = block_based_inference(
            network, image, output_block=output_block, parallel=False
        )
        fused, fused_grid = block_based_inference(
            network, image, output_block=output_block, parallel=True
        )
        assert fused_grid.num_blocks == scalar_grid.num_blocks
        assert_parity(
            {"scalar": scalar, "block_parallel": fused},
            context=f"seed={seed} {height}x{image_width} block={output_block}",
        )
        # The block flow itself must agree with whole-frame execution (to
        # float tolerance: the summation order differs by construction).
        reference = frame_based_inference(network, image)
        assert np.allclose(fused.data, reference.data)

    def test_random_qformat_quantized_parity(self, seed, assert_parity):
        rng = np.random.default_rng(3000 + seed)
        network = build_plain_network(int(rng.integers(2, 4)), int(rng.integers(4, 9)), seed=seed)
        bits = int(rng.choice([6, 7, 8]))
        feature_bits = int(rng.choice([7, 8]))
        plan = quantize_network(network, bits=bits, feature_bits=feature_bits)
        # The drawn Q-formats really vary with the seed (regression guard
        # for the randomization itself).
        assert plan.layers[0].weight_format.bits == bits
        pipeline = BlockInferencePipeline(
            network, output_block=int(rng.integers(8, 13)), quantization=plan
        )
        image = synthetic_image(int(rng.integers(24, 40)), int(rng.integers(24, 40)), seed=seed)
        assert_parity(
            {
                "scalar": pipeline.run(image, parallel=False),
                "block_parallel": pipeline.run(image, parallel=True),
            },
            context=f"seed={seed} Q bits={bits}/{feature_bits}",
        )


@pytest.mark.parametrize("seed", SEEDS)
class TestPostChaosParity:
    """After every injected worker death, survivors stay bit-identical.

    The soak harness's chaos discipline, pinned as a seeded sweep: draw a
    pixel workload, serve it through a fresh inline cluster, kill the
    owning shard (twice — down to the last survivor), and hold every
    surviving shard's ``execute_frame`` output to ``assert_parity``
    against the scalar single-process reference.
    """

    def test_survivors_bit_identical_after_each_worker_death(self, seed, assert_parity):
        rng = np.random.default_rng(5000 + seed)
        workload = str(rng.choice(sorted(PIXEL_WORKLOADS)))
        low, high = PIXEL_WORKLOADS[workload]
        # Snap to multiples of 4: style transfer's two downsamplers only
        # accept frame sizes congruent to 0 or 1 mod 4.
        height = int(rng.integers(low, high)) // 4 * 4
        width = int(rng.integers(low, high)) // 4 * 4
        image = synthetic_image(height, width, seed=seed)
        session = Session(backend="ecnn", cache=ResultCache())
        reference = session.execute(workload, image, parallel=False, cached=False)
        with ServingCluster(workers=3, backend="ecnn", mode="inline") as chaos_cluster:
            outputs = {"scalar_reference": reference}
            outputs["before_chaos"] = chaos_cluster.execute_frame(
                workload, image, cached=False
            )
            for death in (1, 2):
                owner = chaos_cluster._workload_shard[workload]
                chaos_cluster.kill_worker(owner)
                outputs[f"after_death_{death}"] = chaos_cluster.execute_frame(
                    workload, image, cached=False
                )
            assert len(chaos_cluster.live_shard_indices()) == 1
            assert_parity(
                outputs, context=f"seed={seed} workload={workload} post-chaos"
            )


#: Synthetic video motion models the delta-reuse tier must stay exact under.
VIDEO_KINDS = ("static", "noise", "pan", "cut")


def _video_sequence(kind, *, height, width, frames, seed):
    """A seeded synthetic frame sequence (replayable from its seed).

    ``static`` repeats one frame; ``noise`` perturbs a small random patch
    per frame (localized change); ``pan`` translates by two columns per
    frame (np.roll — global but structured change); ``cut`` draws an
    unrelated frame each step (full invalidation).
    """
    rng = np.random.default_rng(seed)
    sequence = [synthetic_image(height, width, seed=seed)]
    for step in range(1, frames):
        previous = sequence[-1]
        if kind == "static":
            sequence.append(previous)
        elif kind == "noise":
            data = previous.data.copy()
            patch = 8
            row = int(rng.integers(0, height - patch))
            col = int(rng.integers(0, width - patch))
            data[:, row : row + patch, col : col + patch] += rng.normal(
                scale=0.05, size=(previous.channels, patch, patch)
            )
            sequence.append(FeatureMap(data=data))
        elif kind == "pan":
            sequence.append(FeatureMap(data=np.roll(previous.data, 2, axis=2)))
        elif kind == "cut":
            sequence.append(synthetic_image(height, width, seed=seed + 1000 * step))
        else:
            raise ValueError(f"unknown sequence kind {kind!r}")
    return sequence


@pytest.mark.parametrize("seed", SEEDS)
class TestRandomizedVideoStreams:
    """Delta-reuse serving is bit-identical to full re-inference.

    For every seed, workload and motion model, each frame served through
    the video-stream tier (session and sharded cluster, exact-reuse mode at
    the default block geometry) must equal the scalar and block-parallel
    full re-inference of that same frame — reuse is an optimization, never
    an approximation.
    """

    @pytest.mark.parametrize("kind", VIDEO_KINDS)
    def test_stream_delta_bit_identical_across_tiers(
        self, seed, kind, cluster, assert_parity
    ):
        rng = np.random.default_rng(6000 + seed)
        workload = str(rng.choice(sorted(PIXEL_WORKLOADS)))
        low, high = PIXEL_WORKLOADS[workload]
        # Snap to multiples of 4 for style transfer's two downsamplers.
        height = int(rng.integers(low, high)) // 4 * 4
        width = int(rng.integers(low, high)) // 4 * 4
        frames = _video_sequence(
            kind, height=height, width=width, frames=3, seed=seed
        )
        session = Session(backend="ecnn", cache=ResultCache())
        stream_id = f"vid-{seed}-{kind}"
        for index, frame in enumerate(frames):
            served = session.execute_stream(stream_id, workload, frame)
            assert_parity(
                {
                    "scalar": session.execute(
                        workload, frame, parallel=False, cached=False
                    ),
                    "block_parallel": session.execute(
                        workload, frame, parallel=True, cached=False
                    ),
                    "stream_delta": served.output,
                    "cluster_stream": cluster.execute_stream(
                        stream_id, workload, frame
                    ).output,
                },
                context=f"seed={seed} kind={kind} workload={workload} frame={index}",
            )
        stats = next(
            s for s in session.video_stream_stats if s.stream_id == stream_id
        )
        assert stats.frames == len(frames)
        # Exact-reuse mode never serves a block whose window changed.
        assert stats.max_reused_residual == 0.0
        if kind == "static":
            assert stats.blocks_reused > 0

    def test_thresholded_reuse_error_is_bounded_and_measured(self, seed):
        rng = np.random.default_rng(7000 + seed)
        height = int(rng.integers(24, 49))
        width = int(rng.integers(24, 49))
        threshold = 1e-2
        base = synthetic_image(height, width, seed=seed)
        noisy = FeatureMap(
            data=base.data + rng.normal(scale=1e-4, size=base.data.shape)
        )
        session = Session(backend="ecnn", cache=ResultCache())
        stream = session.video_stream("lossy", "denoise", threshold=threshold)
        stream.submit(base)
        served = stream.submit(noisy)
        reference_prev = session.execute(
            "denoise", base, parallel=False, cached=False
        ).output.data
        reference_cur = session.execute(
            "denoise", noisy, parallel=False, cached=False
        ).output.data
        # Low-amplitude noise reuses everything; the served pixels are the
        # predecessor's exact output, so the error against fresh
        # re-inference is bounded by the drift between the two references —
        # a measured bound, not a trust-me bound.
        assert served.blocks_reused == served.blocks_total
        assert np.array_equal(served.output.data, reference_prev)
        error = float(np.abs(served.output.data - reference_cur).max())
        assert error <= float(np.abs(reference_cur - reference_prev).max())
        stats = stream.stats
        assert 0.0 < stats.max_reused_residual <= threshold


def _sweep_kernel_sets(compute):
    """``compute()`` once per available kernel set; name -> ndarray output."""
    outputs = {}
    for name in available_kernel_sets():
        with use_kernel_set(name):
            outputs[name] = np.asarray(compute())
    return outputs


def _assert_kernel_tolerance(outputs, context):
    """Each set's output vs the numpy oracle, within its documented tolerance.

    ``tolerance == 0.0`` demands bit identity (the oracle against itself,
    and any future exact set); non-zero tolerances (numba's MAC
    accumulation-order rounding) are absolute bounds.
    """
    reference = outputs["numpy"]
    for name, data in outputs.items():
        tolerance = kernel_set(name).tolerance
        assert data.shape == reference.shape, (
            f"kernel set {name} changed the output shape "
            f"({data.shape} != {reference.shape}) [{context}]"
        )
        if tolerance == 0.0:
            assert np.array_equal(data, reference), (
                f"kernel set {name} must be bit-identical to the numpy "
                f"oracle [{context}]"
            )
        else:
            diff = float(np.max(np.abs(data - reference))) if data.size else 0.0
            assert diff <= tolerance, (
                f"kernel set {name} diverged from the numpy oracle by "
                f"{diff:g} > documented tolerance {tolerance:g} [{context}]"
            )


@pytest.mark.parametrize("seed", SEEDS)
class TestKernelSetParity:
    """Every available kernel set agrees with the numpy reference oracle.

    The sweep re-runs representative paths of every tier — scalar layer
    kernels, fused ``forward_batch``, block-parallel flow, quantized
    Q-format passes, and the session / cluster / video-stream serving
    stack — once per registered-and-available kernel set (numpy always;
    numba on the CI leg that installs it), holding each set's pixels to
    its documented tolerance against the numpy oracle.  On a numba-less
    machine the sweep degenerates to the oracle against itself, which
    keeps the harness itself under test.
    """

    def test_layer_kernels_across_sets(self, seed, draw_layer_stack):
        rng = np.random.default_rng(8000 + seed)
        channels = int(rng.integers(2, 6))
        network = draw_layer_stack(rng, channels)
        maps = [
            FeatureMap(data=rng.normal(size=(channels, 14, 15))) for _ in range(3)
        ]
        scalar = _sweep_kernel_sets(lambda: network.forward(maps[0]).data)
        _assert_kernel_tolerance(scalar, f"seed={seed} scalar forward")
        batched = _sweep_kernel_sets(
            lambda: network.forward_batch(BatchedFeatureMap.from_maps(maps)).data
        )
        _assert_kernel_tolerance(batched, f"seed={seed} forward_batch")

    def test_block_flow_and_qformat_across_sets(self, seed):
        rng = np.random.default_rng(8100 + seed)
        network = build_plain_network(
            int(rng.integers(2, 4)), int(rng.integers(4, 9)), seed=seed
        )
        image = synthetic_image(
            int(rng.integers(24, 40)), int(rng.integers(24, 40)), seed=seed
        )
        fused = _sweep_kernel_sets(
            lambda: block_based_inference(
                network, image, output_block=12, parallel=True
            )[0].data
        )
        _assert_kernel_tolerance(fused, f"seed={seed} block-parallel flow")
        # The Q-format passes are integer-exact in every set: quantize codes
        # are bit-identical and the fraction search picks the same format
        # (ties included — every set breaks toward the larger frac).
        values = rng.normal(scale=float(rng.uniform(0.01, 30.0)), size=257)
        codes = _sweep_kernel_sets(
            lambda: optimal_fraction_bits(values).quantize_to_codes(values)
        )
        reference = codes["numpy"]
        for name, data in codes.items():
            assert np.array_equal(data, reference), (
                f"kernel set {name} changed quantize/fraction-search results "
                f"(seed={seed})"
            )

    def test_serving_tiers_across_sets(self, seed):
        rng = np.random.default_rng(8200 + seed)
        height = int(rng.integers(24, 41))
        width = int(rng.integers(24, 41))
        image = synthetic_image(height, width, seed=seed)
        moved = FeatureMap(data=np.roll(image.data, 2, axis=2))

        def serve_all_tiers():
            # Pin the session to the set under sweep: a default "auto"
            # construction would re-run auto-selection and override the
            # use_kernel_set scope.
            session = Session(
                backend="ecnn",
                cache=ResultCache(),
                kernels=active_kernel_set().name,
            )
            outputs = [
                session.execute("denoise", image, parallel=False, cached=False),
                session.execute("denoise", image, parallel=True, cached=False),
            ]
            with ServingCluster(
                workers=2, backend="ecnn", mode="inline", kernels=session.kernels
            ) as sharded:
                outputs.append(
                    sharded.execute_frame("denoise", image, cached=False)
                )
            session.execute_stream(f"kp-{seed}", "denoise", image)
            outputs.append(
                session.execute_stream(f"kp-{seed}", "denoise", moved)
            )
            return np.stack([result.output.data for result in outputs])

        tiers = _sweep_kernel_sets(serve_all_tiers)
        _assert_kernel_tolerance(
            tiers, f"seed={seed} session/cluster/video tiers {height}x{width}"
        )


@pytest.mark.parametrize("seed", SEEDS)
class TestRandomizedServingStack:
    def test_session_engine_cluster_bit_identical(self, seed, engine, cluster, assert_parity):
        rng = np.random.default_rng(4000 + seed)
        workload = str(rng.choice(sorted(PIXEL_WORKLOADS)))
        low, high = PIXEL_WORKLOADS[workload]
        height = int(rng.integers(low, high))
        width = int(rng.integers(low, high))
        image = synthetic_image(height, width, seed=seed)
        session = Session(backend="ecnn", cache=ResultCache())
        assert_parity(
            {
                "session_scalar": session.execute(
                    workload, image, parallel=False, cached=False
                ),
                "session_parallel": session.execute(
                    workload, image, parallel=True, cached=False
                ),
                "engine": engine.execute_frame(workload, image, cached=False),
                "cluster": cluster.execute_frame(workload, image, cached=False),
                "cluster_batch": cluster.execute_frames(
                    workload, [image], cached=False
                )[0],
            },
            context=f"seed={seed} workload={workload} {height}x{width}",
        )
