"""Tests for the comparator-system models (frame-based, fusion, Diffy, IDEAL,
Eyeriss, SCALE-Sim)."""

import pytest

from repro.baselines.diffy import DIFFY_FFDNET, DIFFY_VDSR
from repro.baselines.eyeriss import EYERISS_VGG16, recognition_comparison
from repro.baselines.frame_based import frame_based_feature_bandwidth, frame_based_report
from repro.baselines.ideal import IDEAL_BM3D
from repro.baselines.layer_fusion import fused_layer_line_buffer_bytes, fusion_comparison
from repro.baselines.scale_sim import TPU_CONFIG, simulate_systolic
from repro.hw.dram import dram_traffic, select_dram
from repro.models.baselines import build_vdsr
from repro.models.ernet import build_dnernet, build_sr4ernet
from repro.specs import SPECIFICATIONS


class TestFrameBased:
    def test_eq1_vdsr_full_hd(self):
        bandwidth = frame_based_feature_bandwidth(20, 64, SPECIFICATIONS["HD30"])
        assert bandwidth == pytest.approx(303.0, rel=0.02)

    def test_uhd_is_four_times_full_hd(self):
        hd = frame_based_feature_bandwidth(20, 64, SPECIFICATIONS["HD30"])
        uhd = frame_based_feature_bandwidth(20, 64, SPECIFICATIONS["UHD30"])
        assert uhd == pytest.approx(4 * hd, rel=0.01)

    def test_report_for_actual_vdsr_network(self):
        report = frame_based_report(build_vdsr(), SPECIFICATIONS["HD30"])
        assert report.feature_bandwidth_gb_s == pytest.approx(303.0, rel=0.1)
        # The paper quotes a ~811x overhead of feature traffic over image
        # traffic for VDSR (2C(D-1)/3 with 16-bit features vs 8-bit images).
        assert report.bandwidth_overhead_versus_images() == pytest.approx(811, rel=0.25)

    def test_block_flow_removes_orders_of_magnitude(self):
        frame = frame_based_report(build_vdsr(), SPECIFICATIONS["HD30"])
        block = dram_traffic(build_dnernet(16, 1, 0), SPECIFICATIONS["HD30"])
        assert frame.total_bandwidth_gb_s / block.total_gb_s > 100

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            frame_based_feature_bandwidth(1, 64, SPECIFICATIONS["HD30"])
        with pytest.raises(ValueError):
            frame_based_feature_bandwidth(20, 0, SPECIFICATIONS["HD30"])


class TestLayerFusion:
    def test_vdsr_needs_9_3_mb_of_line_buffers(self):
        size = fused_layer_line_buffer_bytes(20, 64, 1920)
        assert size == pytest.approx(9.3e6, rel=0.05)

    def test_line_buffer_grows_with_width_and_depth(self):
        base = fused_layer_line_buffer_bytes(20, 64, 1920)
        assert fused_layer_line_buffer_bytes(20, 64, 3840) == pytest.approx(2 * base)
        assert fused_layer_line_buffer_bytes(39, 64, 1920) == pytest.approx(2 * base, rel=0.01)

    def test_comparison_against_block_buffers(self):
        comparison = fusion_comparison("VDSR", 20, 64, 1920, 3 * 512 * 1024)
        assert comparison.sram_ratio > 5.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fused_layer_line_buffer_bytes(1, 64, 1920)
        with pytest.raises(ValueError):
            fused_layer_line_buffer_bytes(20, 0, 1920)


class TestPublishedFigures:
    def test_table7_power_ordering(self):
        # eCNN (~7 W) beats IDEAL (12.05 W), Diffy-FFDNet (27.16 W) and
        # Diffy-VDSR (54.32 W).
        assert IDEAL_BM3D.power_w < DIFFY_FFDNET.power_w < DIFFY_VDSR.power_w
        assert DIFFY_VDSR.power_ratio_versus(7.08) > 7.0
        assert DIFFY_FFDNET.power_ratio_versus(7.34) > 3.5

    def test_comparators_need_high_end_dram(self):
        for figure in (IDEAL_BM3D, DIFFY_FFDNET, DIFFY_VDSR):
            assert figure.dram_bandwidth_gb_s > 20.0
            assert not figure.throughput_is_constant

    def test_ecnn_dram_is_low_end_by_comparison(self):
        traffic = dram_traffic(build_dnernet(3, 1, 0), SPECIFICATIONS["UHD30"])
        assert select_dram(traffic.total_gb_s).bandwidth_gb_s <= 3.2
        assert DIFFY_VDSR.dram_bandwidth_gb_s / traffic.total_gb_s > 10

    def test_power_ratio_validation(self):
        with pytest.raises(ValueError):
            DIFFY_VDSR.power_ratio_versus(0.0)


class TestEyerissComparison:
    def test_published_energy_and_dram_per_image(self):
        assert EYERISS_VGG16.energy_per_image_mj == pytest.approx(337, rel=0.02)
        assert EYERISS_VGG16.dram_per_image_mb == pytest.approx(106, rel=0.02)

    def test_ecnn_recognition_advantages(self):
        comparison = recognition_comparison(
            ecnn_fps=1344.0,
            ecnn_power_w=7.05,
            ecnn_dram_mb_s=308.0,
            ecnn_area_mm2=63.99,
        )
        assert comparison.ecnn.energy_per_image_mj == pytest.approx(5.25, rel=0.01)
        assert comparison.energy_advantage > 50
        assert comparison.dram_advantage > 100
        assert comparison.fps_advantage > 1000


class TestScaleSim:
    def test_tpu_peak_tops(self):
        assert TPU_CONFIG.peak_tops == pytest.approx(91.8, rel=0.02)

    def test_sr4_uhd_not_realtime_on_tpu(self):
        report = simulate_systolic(build_sr4ernet(17, 3, 1), SPECIFICATIONS["UHD30"])
        assert report.fps < 30.0
        assert report.dram_bandwidth_gb_s > 5.0

    def test_sr4_hd_on_tpu(self):
        report = simulate_systolic(build_sr4ernet(34, 4, 0), SPECIFICATIONS["HD30"])
        assert 30.0 < report.fps < 90.0

    def test_ecnn_wins_on_efficiency_metrics(self):
        from repro.hw.performance import evaluate_performance

        net = build_sr4ernet(17, 3, 1)
        tpu = simulate_systolic(net, SPECIFICATIONS["UHD30"])
        ecnn = evaluate_performance(net, SPECIFICATIONS["UHD30"])
        ecnn_traffic = dram_traffic(net, SPECIFICATIONS["UHD30"])
        throughput_ratio = ecnn.throughput_efficiency / tpu.throughput_efficiency
        intensity_ratio = (
            ecnn.peak_tops / ecnn_traffic.total_gb_s
        ) / tpu.arithmetic_intensity
        # Section 7.2: eCNN delivers ~3.1x fps/TOPS and ~6.4x TOPS/(GB/s) for
        # this model; the reproduction should preserve at least the ordering
        # and rough magnitude.
        assert throughput_ratio > 2.0
        assert intensity_ratio > 3.0
