"""The pluggable compute-kernel registry (:mod:`repro.kernels`).

Covers the registry lifecycle (registration validation, lookup, selection,
scoped activation, the warm-compile memo contract), the clean numpy fallback
when numba is force-disabled (including the registry-routing assertion for
the chunked-conv scalar fallback), the Session/handle/profile plumbing of
the resolved kernel-set name, and the Q-format fraction-search tie-breaking
regression (scalar and vectorized searches agree on every tie shape).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.kernels as kernels
from repro.analysis.workloads import synthetic_image
from repro.api import Session
from repro.api.results import PerfProfile
from repro.core.blockflow import block_based_inference
from repro.kernels import (
    KERNEL_SETS,
    KernelUnavailableError,
    active_kernel_set,
    available_kernel_sets,
    describe_kernel_sets,
    kernel_set,
    register_kernel,
    select_kernel_set,
    set_is_available,
    unregister_kernel,
    use_kernel_set,
)
from repro.models.baselines import build_plain_network
from repro.quant.qformat import QFormat
from repro.quant.quantize import _optimal_fraction_bits_scalar, optimal_fraction_bits
from repro.runtime import ResultCache


@pytest.fixture(autouse=True)
def _restore_registry():
    """Every test leaves the registry and the active set as it found them."""
    snapshot = dict(KERNEL_SETS)
    active = active_kernel_set()
    yield
    KERNEL_SETS.clear()
    KERNEL_SETS.update(snapshot)
    kernels._ACTIVE = active


class _CompleteSet:
    """A minimal but protocol-complete kernel set (delegates to numpy)."""

    name = "dummy"
    description = "test-only delegate set"
    tolerance = 0.0

    def available(self) -> bool:
        return True

    def warmup(self):
        return {"set": self.name}

    def conv2d(self, data, weights, bias):
        return kernel_set("numpy").conv2d(data, weights, bias)

    def conv2d_batch(self, data, weights, bias):
        return kernel_set("numpy").conv2d_batch(data, weights, bias)

    def quantize_to_codes(self, values, step, min_code, max_code):
        return kernel_set("numpy").quantize_to_codes(values, step, min_code, max_code)

    def fraction_search(self, values, fracs, min_code, max_code, norm):
        return kernel_set("numpy").fraction_search(
            values, fracs, min_code, max_code, norm
        )


class TestRegistry:
    def test_builtin_sets_are_registered(self):
        assert "numpy" in KERNEL_SETS
        assert "numba" in KERNEL_SETS
        assert set_is_available("numpy")
        assert "numpy" in available_kernel_sets()
        descriptions = describe_kernel_sets()
        assert set(descriptions) == set(KERNEL_SETS)
        assert all(descriptions.values())

    def test_register_lookup_select_unregister_round_trip(self):
        # register_kernel applied as a plain call: the linter requires any
        # *decorated* class to be protocol-complete, which is exactly what
        # the validation tests below need to violate.
        register_kernel(_CompleteSet)
        registered = kernel_set("dummy")
        assert isinstance(registered, _CompleteSet)
        assert select_kernel_set("dummy") is registered
        assert active_kernel_set() is registered
        unregister_kernel("dummy")
        assert "dummy" not in KERNEL_SETS
        # Unregistering the active set falls back to the numpy oracle.
        assert active_kernel_set() is kernel_set("numpy")

    def test_unknown_set_lookup_raises(self):
        with pytest.raises(KeyError, match="unknown kernel set"):
            kernel_set("no-such-set")

    def test_registration_rejects_missing_attribute(self):
        incomplete = type("NoTolerance", (), dict(vars(_CompleteSet)))
        del incomplete.tolerance
        with pytest.raises(TypeError, match="tolerance"):
            register_kernel(incomplete)
        assert "dummy" not in KERNEL_SETS

    def test_registration_rejects_missing_method(self):
        incomplete = type("NoBatch", (), dict(vars(_CompleteSet)))
        del incomplete.conv2d_batch
        with pytest.raises(TypeError, match="conv2d_batch"):
            register_kernel(incomplete)
        assert "dummy" not in KERNEL_SETS

    def test_registration_rejects_duplicate_name(self):
        duplicate = type("Impostor", (), dict(vars(_CompleteSet), name="numpy"))
        with pytest.raises(ValueError, match="already registered"):
            register_kernel(duplicate)
        assert isinstance(KERNEL_SETS["numpy"], type(kernel_set("numpy")))


class TestSelection:
    def test_auto_prefers_fastest_available(self):
        chosen = select_kernel_set("auto")
        preference = [
            name for name in kernels._PREFERENCE if set_is_available(name)
        ]
        assert chosen.name == preference[0]

    def test_auto_falls_back_to_numpy_when_numba_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS_DISABLE", "numba")
        assert not set_is_available("numba")
        assert available_kernel_sets() == ("numpy",)
        assert select_kernel_set("auto").name == "numpy"

    def test_explicit_unavailable_set_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS_DISABLE", "numba")
        with pytest.raises(KernelUnavailableError, match="numba"):
            select_kernel_set("numba")
        # The failed selection must not clobber the active set.
        assert active_kernel_set().name == "numpy"

    def test_warmup_is_memoized(self):
        for name in available_kernel_sets():
            chosen = kernel_set(name)
            assert chosen.warmup() is chosen.warmup()

    def test_use_kernel_set_restores_previous(self):
        register_kernel(_CompleteSet)
        previous = select_kernel_set("dummy")
        with use_kernel_set("numpy") as scoped:
            assert scoped is kernel_set("numpy")
            assert active_kernel_set() is scoped
        assert active_kernel_set() is previous

    def test_use_kernel_set_restores_on_error(self):
        previous = active_kernel_set()
        with pytest.raises(RuntimeError, match="boom"):
            with use_kernel_set("numpy"):
                raise RuntimeError("boom")
        assert active_kernel_set() is previous


class TestNumpyFallbackRouting:
    """Satellite: the chunked-conv scalar fallback routes through the registry.

    With numba force-disabled, auto-selection lands on the numpy oracle and
    both block-flow paths (scalar one-block-at-a-time and block-parallel
    batched) call *its* conv kernels — pinned by counting calls on the
    registered singleton — and produce bit-identical pixels.
    """

    def test_scalar_and_batched_paths_route_through_numpy_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS_DISABLE", "numba")
        select_kernel_set("auto")
        assert active_kernel_set().name == "numpy"

        network = build_plain_network(3, 4, seed=11)
        image = synthetic_image(20, 23, seed=11)
        baseline, _ = block_based_inference(network, image, 8, parallel=False)

        numpy_set = kernel_set("numpy")
        calls = {"conv2d": 0, "conv2d_batch": 0}
        original_conv2d = numpy_set.conv2d
        original_batch = numpy_set.conv2d_batch

        def counting_conv2d(data, weights, bias):
            calls["conv2d"] += 1
            return original_conv2d(data, weights, bias)

        def counting_batch(data, weights, bias):
            calls["conv2d_batch"] += 1
            return original_batch(data, weights, bias)

        monkeypatch.setattr(numpy_set, "conv2d", counting_conv2d)
        monkeypatch.setattr(numpy_set, "conv2d_batch", counting_batch)

        scalar, _ = block_based_inference(network, image, 8, parallel=False)
        assert calls["conv2d"] > 0
        assert calls["conv2d_batch"] == 0
        scalar_convs = calls["conv2d"]

        # The parallel path fuses same-shaped groups through conv2d_batch
        # (singleton groups may legitimately take the scalar kernel — both
        # live in the same registered set either way).
        batched, _ = block_based_inference(network, image, 8, parallel=True)
        assert calls["conv2d_batch"] > 0
        assert calls["conv2d"] >= scalar_convs

        assert np.array_equal(scalar.data, baseline.data)
        assert np.array_equal(batched.data, baseline.data)


class TestSessionPlumbing:
    def test_session_resolves_auto_to_a_registered_set(self):
        session = Session(backend="ecnn", cache=ResultCache())
        assert session.kernels != "auto"
        assert session.kernels in available_kernel_sets()

    def test_explicit_selection_is_recorded(self):
        session = Session(backend="ecnn", cache=ResultCache(), kernels="numpy")
        assert session.kernels == "numpy"
        assert active_kernel_set().name == "numpy"

    def test_handle_carries_resolved_name_and_rebuilds_identically(self):
        session = Session(backend="ecnn", cache=ResultCache(), kernels="numpy")
        handle = session.handle()
        assert handle.kernels == "numpy"
        rebuilt = handle.create()
        assert rebuilt.kernels == session.kernels

    def test_profile_is_stamped_with_session_kernels(self):
        cache = ResultCache()
        session = Session(backend="ecnn", cache=cache, kernels="numpy")
        profile = session.profile("denoise")
        assert profile.kernels == session.kernels
        # The stamp happens after cache retrieval: a sibling session sharing
        # the cache reuses the analytic figures but reports its own set.
        sibling = Session(backend="ecnn", cache=cache, kernels="numpy")
        assert sibling.profile("denoise").kernels == sibling.kernels

    def test_perf_profile_default_kernels_is_numpy(self):
        assert PerfProfile.__dataclass_fields__["kernels"].default == "numpy"

    def test_frame_keys_are_kernel_set_addressed(self):
        session = Session(backend="ecnn", cache=ResultCache(), kernels="numpy")
        entry = session.workload("denoise")
        frame = synthetic_image(24, 24, seed=3)
        key_numpy = session._frame_key(entry, frame, True)
        session.kernels = "other-set"
        assert session._frame_key(entry, frame, True) != key_numpy


class TestCli:
    def test_list_kernels_reports_availability(self, capsys):
        from repro.runtime.cli import main

        assert main(["--list-kernels"]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out
        assert "numba" in out
        assert "[available]" in out

    def test_kernels_flag_rejects_unknown_set(self, capsys):
        from repro.runtime.cli import main

        with pytest.raises(SystemExit):
            main(["--kernels", "no-such-set"])


class TestFractionSearchTies:
    """Satellite regression: scalar and vectorized Eq. (4) searches agree on
    every tie shape (all-zero, all-inf and l2-overflow inputs), breaking ties
    toward the larger frac instead of crashing."""

    TIE_FRAC = max(range(-4, 16))  # default search range's largest candidate

    def _both(self, values, norm):
        with np.errstate(over="ignore", invalid="ignore"):
            scalar = _optimal_fraction_bits_scalar(values, norm=norm)
            vectorized = optimal_fraction_bits(values, norm=norm)
        return scalar, vectorized

    @pytest.mark.parametrize("norm", ("l1", "l2"))
    def test_all_zero_values_tie_toward_largest_frac(self, norm):
        scalar, vectorized = self._both(np.zeros(7), norm)
        assert scalar == vectorized == QFormat(frac=self.TIE_FRAC, bits=8, signed=True)

    @pytest.mark.parametrize("norm", ("l1", "l2"))
    def test_infinite_sample_ties_at_infinite_error(self, norm):
        scalar, vectorized = self._both(np.array([np.inf, 1.0]), norm)
        assert scalar == vectorized == QFormat(frac=self.TIE_FRAC, bits=8, signed=True)

    def test_l2_overflow_for_every_candidate_ties(self):
        scalar, vectorized = self._both(np.array([1e300]), "l2")
        assert scalar == vectorized == QFormat(frac=self.TIE_FRAC, bits=8, signed=True)

    def test_ordinary_values_still_agree(self):
        rng = np.random.default_rng(5)
        for _ in range(5):
            values = rng.normal(scale=rng.uniform(0.01, 20.0), size=129)
            for norm in ("l1", "l2"):
                scalar, vectorized = self._both(values, norm)
                assert scalar == vectorized
