"""Unit and property tests for the dynamic fixed-point quantization package."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models.ernet import build_dnernet
from repro.nn.network import Sequential, iter_conv_layers
from repro.quant import (
    QFormat,
    mse,
    optimal_fraction_bits,
    psnr,
    quantization_error,
    quantize_network,
    simulate_fine_tuning,
)
from repro.quant.quantize import apply_plan


class TestQFormat:
    def test_name_and_step(self):
        assert QFormat(6).name == "Q6"
        assert QFormat(4, signed=False).name == "UQ4"
        assert QFormat(3).step == 0.125

    def test_ranges_8bit(self):
        q = QFormat(7, bits=8, signed=True)
        assert q.min_code == -128 and q.max_code == 127
        assert q.max_value == pytest.approx(127 / 128)
        u = QFormat(8, bits=8, signed=False)
        assert u.min_code == 0 and u.max_code == 255

    def test_quantize_clips_and_rounds(self):
        q = QFormat(6, bits=8)
        values = np.array([0.0, 0.01, 1.5, 3.0, -5.0])
        quantized = q.quantize(values)
        assert quantized[0] == 0.0
        assert abs(quantized[1] - 0.01) <= q.step / 2
        assert quantized[3] == pytest.approx(q.max_value)
        assert quantized[4] == pytest.approx(q.min_value)

    def test_parse_round_trip(self):
        assert QFormat.parse("Q5") == QFormat(5)
        assert QFormat.parse("UQ3") == QFormat(3, signed=False)
        with pytest.raises(ValueError):
            QFormat.parse("X3")

    def test_codes_out_of_range_rejected(self):
        q = QFormat(0, bits=8)
        with pytest.raises(ValueError):
            q.codes_to_values(np.array([200]))

    def test_minimum_bits(self):
        with pytest.raises(ValueError):
            QFormat(0, bits=1)

    @settings(max_examples=50, deadline=None)
    @given(
        frac=st.integers(-2, 10),
        values=st.lists(st.floats(-4, 4, allow_nan=False), min_size=1, max_size=50),
    )
    def test_quantization_error_bounded_by_half_lsb_in_range(self, frac, values):
        q = QFormat(frac, bits=8)
        arr = np.clip(np.asarray(values), q.min_value, q.max_value)
        err = np.abs(arr - q.quantize(arr))
        assert np.all(err <= q.step / 2 + 1e-12)

    @settings(max_examples=50, deadline=None)
    @given(codes=st.lists(st.integers(-128, 127), min_size=1, max_size=64))
    def test_code_round_trip_is_exact(self, codes):
        q = QFormat(5, bits=8)
        arr = np.asarray(codes)
        values = q.codes_to_values(arr)
        assert np.array_equal(q.quantize_to_codes(values), arr)


class TestPrecisionSearch:
    def test_small_values_prefer_fine_fractions(self):
        values = np.random.default_rng(0).normal(0, 0.01, 1000)
        fmt = optimal_fraction_bits(values)
        assert fmt.frac >= 10

    def test_large_values_prefer_coarse_fractions(self):
        values = np.random.default_rng(0).normal(0, 10.0, 1000)
        fmt = optimal_fraction_bits(values)
        assert fmt.frac <= 4

    def test_l1_vs_l2_both_supported(self):
        values = np.random.default_rng(1).normal(0, 0.3, 500)
        l1 = optimal_fraction_bits(values, norm="l1")
        l2 = optimal_fraction_bits(values, norm="l2")
        assert abs(l1.frac - l2.frac) <= 2

    def test_chosen_format_minimises_error(self):
        values = np.random.default_rng(2).normal(0, 0.5, 300)
        best = optimal_fraction_bits(values, norm="l2")
        best_err = quantization_error(values, best, norm="l2")
        for frac in range(-2, 12):
            err = quantization_error(values, QFormat(frac), norm="l2")
            assert best_err <= err + 1e-9

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            optimal_fraction_bits(np.array([]))

    def test_bad_norm_rejected(self):
        with pytest.raises(ValueError):
            quantization_error(np.ones(3), QFormat(4), norm="l3")

    def test_vectorized_search_matches_scalar_reference(self):
        # The one-pass search must pick the same format as the original
        # candidate-at-a-time loop on every input — including tie-breaking
        # toward the finer fraction and unusual bit widths / ranges.
        from repro.quant.quantize import _optimal_fraction_bits_scalar

        rng = np.random.default_rng(42)
        for case in range(60):
            scale = 10.0 ** rng.uniform(-4, 3)
            values = rng.normal(0, scale, size=int(rng.integers(1, 300)))
            if case % 3 == 0:
                values = np.abs(values)
            bits = int(rng.choice([4, 7, 8, 12]))
            signed = bool(rng.random() < 0.7)
            norm = "l1" if case % 2 else "l2"
            fast = optimal_fraction_bits(values, bits=bits, signed=signed, norm=norm)
            slow = _optimal_fraction_bits_scalar(
                values, bits=bits, signed=signed, norm=norm
            )
            assert fast == slow, (case, fast, slow)

    def test_vectorized_search_custom_range_and_ties(self):
        from repro.quant.quantize import _optimal_fraction_bits_scalar

        # All-zero input makes every candidate error zero: the tie must
        # break toward the finest fraction of the range in both searches.
        zeros = np.zeros(17)
        custom = range(2, 9)
        fast = optimal_fraction_bits(zeros, search_range=custom)
        assert fast == _optimal_fraction_bits_scalar(zeros, search_range=custom)
        assert fast.frac == 8
        with pytest.raises(ValueError):
            optimal_fraction_bits(np.ones(3), search_range=[])
        with pytest.raises(ValueError):
            optimal_fraction_bits(np.ones(3), norm="l3")


class TestNetworkQuantization:
    def test_plan_covers_all_convs(self, tiny_ernet):
        plan = quantize_network(tiny_ernet)
        convs = sum(1 for _ in iter_conv_layers(tiny_ernet))
        assert plan.num_layers == convs
        assert plan.model_name == tiny_ernet.name

    def test_plan_with_calibration_inputs(self, tiny_ernet, small_image):
        plan = quantize_network(tiny_ernet, calibration_inputs=[small_image])
        assert plan.num_layers > 0
        # With real activations collected, output formats should not all be the
        # generic default.
        assert len({lq.output_format.name for lq in plan.layers}) >= 1

    def test_apply_plan_quantizes_weights_in_place(self):
        net = build_dnernet(2, 1, 0, seed=11)
        plan = quantize_network(net)
        apply_plan(net, plan)
        for conv, lq in zip(
            list(iter_conv_layers(net)),
            plan.layers,
        ):
            assert np.allclose(conv.weights, lq.weight_format.quantize(conv.weights))

    def test_quantized_network_output_close_to_float(self, small_image):
        net = build_dnernet(2, 1, 0, seed=13)
        reference = net.forward(small_image)
        plan = quantize_network(net, calibration_inputs=[small_image])
        apply_plan(net, plan)
        quantized = net.forward(small_image)
        assert psnr(reference.data, quantized.data, peak=float(np.abs(reference.data).max())) > 25.0

    def test_network_without_convs_rejected(self):
        from repro.nn.layers import ReLU

        with pytest.raises(ValueError):
            quantize_network(Sequential([ReLU()]))

    def test_describe_lists_layers(self, tiny_ernet):
        plan = quantize_network(tiny_ernet)
        text = plan.describe()
        assert "quantization plan" in text
        assert plan.layers[0].layer_name in text


class TestFineTuning:
    def test_finetune_recovers_most_loss(self, tiny_ernet):
        plan = quantize_network(tiny_ernet)
        result = simulate_fine_tuning(plan)
        assert result.final_loss_db <= result.initial_loss_db
        assert 0.0 < result.final_loss_db <= 0.3
        assert result.recovered_db >= 0.0

    def test_lower_bits_increase_initial_loss(self, tiny_ernet):
        plan = quantize_network(tiny_ernet)
        loss8 = simulate_fine_tuning(plan, bits=8).initial_loss_db
        loss6 = simulate_fine_tuning(plan, bits=6).initial_loss_db
        assert loss6 > loss8

    def test_deterministic_for_fixed_seed(self, tiny_ernet):
        plan = quantize_network(tiny_ernet)
        a = simulate_fine_tuning(plan, seed=4)
        b = simulate_fine_tuning(plan, seed=4)
        assert a == b


class TestMetrics:
    def test_psnr_infinite_for_identical(self):
        data = np.random.default_rng(0).random((3, 8, 8))
        assert psnr(data, data) == float("inf")

    def test_psnr_known_value(self):
        reference = np.zeros((1, 10, 10))
        test = np.full((1, 10, 10), 0.1)
        assert psnr(reference, test) == pytest.approx(20.0)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 2)))
