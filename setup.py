"""Packaging metadata (kept as setup.py for offline installs).

The offline environment used for this reproduction has no ``wheel`` package,
so PEP 660 editable installs (which build a wheel) fail.  Keeping a setup.py
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to
the classic ``setup.py develop`` path, which works offline.
"""

from pathlib import Path

from setuptools import find_packages, setup

_ROOT = Path(__file__).parent
_README = _ROOT / "README.md"

setup(
    name="repro-ecnn",
    version="1.5.0",
    description=(
        "Reproduction of eCNN (MICRO 2019): block-based CNN accelerator "
        "models with a multi-stream serving runtime, a sharded "
        "multi-worker serving cluster, a soak & chaos harness and a "
        "static plan verifier"
    ),
    long_description=_README.read_text(encoding="utf-8") if _README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-runtime=repro.runtime.cli:main",
            "repro-bench=repro.bench.cli:main",
            "repro-soak=repro.soak.cli:main",
            "repro-check=repro.check.cli:main",
        ]
    },
    classifiers=[
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
    ],
)
