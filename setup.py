"""Legacy setup shim.

The offline environment used for this reproduction has no ``wheel`` package,
so PEP 660 editable installs (which build a wheel) fail.  Keeping a setup.py
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to
the classic ``setup.py develop`` path, which works offline.
"""

from setuptools import setup

setup()
